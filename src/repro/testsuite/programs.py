"""Executable semantic test cases for the design-space questions
(paper §2: "a suite of semantic test cases ... gathered experimental
data from multiple implementations").

Each :class:`TestCase` carries the C source and the *expected verdict
per memory model*, expressed as one of:

* ``"ok"`` — terminates normally (any stdout);
* ``"ok:<text>"`` — terminates normally with exactly this stdout;
* ``"ub"`` — some undefined behaviour is flagged;
* ``"ub:<Name>"`` — that specific undefined behaviour;
* ``"either"`` — both behaviours are allowed (nondeterministic
  questions like Q2).

The model keys are "concrete", "provenance" (the candidate de facto
model), "strict" (the strict ISO-leaning model) and optionally "cheri".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TestCase:
    name: str
    questions: Tuple[str, ...]
    source: str
    expect: Dict[str, str]
    # Features used, consulted by the KCC persona's supported() check.
    features: Tuple[str, ...] = ()
    exhaustive: bool = False   # needs exploration (nondeterminism)


TESTS: Dict[str, TestCase] = {}


def _add(name: str, questions, source: str, expect: Dict[str, str],
         features=(), exhaustive=False) -> None:
    TESTS[name] = TestCase(name, tuple(questions), source, expect,
                           tuple(features), exhaustive)


# ---------------------------------------------------------------------------
# Pointer provenance basics (Q1, Q17) — the DR260 example, §2.1
# ---------------------------------------------------------------------------

_add("provenance_basic_global_yx", ["Q1", "Q17"], r"""
#include <stdio.h>
#include <string.h>
int y=2, x=1;
int main() {
  int *p = &x + 1;
  int *q = &y;
  printf("Addresses: p=%p q=%p\n",(void*)p,(void*)q);
  if (memcmp(&p, &q, sizeof(p)) == 0) {
    *p = 11; // does this have undefined behaviour?
    printf("x=%d y=%d *p=%d *q=%d\n",x,y,*p,*q);
  }
  return 0;
}
""", {"concrete": "ok", "provenance": "ub:Access_wrong_provenance",
      "strict": "ub"}, features=("memcmp", "ptr-bytes"))

_add("provenance_equality_adjacent", ["Q3", "Q23"], r"""
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  int *p = &x + 1;
  int *q = &y;
  if ((char*)p == (char*)q) printf("equal\n");
  else printf("unequal\n");
  return 0;
}
""", {"concrete": "ok", "provenance": "ok", "strict": "ok"},
    features=("one-past",))

_add("provenance_equality_gcc", ["Q2"], r"""
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  int *p = &x + 1;
  int *q = &y;
  if (p == q) printf("eq\n"); else printf("neq\n");
  return 0;
}
""", {"concrete": "ok:eq\n", "provenance": "ok:eq\n", "gcc": "either",
      "strict": "ok"}, features=("one-past",), exhaustive=True)

# ---------------------------------------------------------------------------
# Provenance via integers (Q5-Q8)
# ---------------------------------------------------------------------------

_add("int_cast_roundtrip", ["Q5", "Q6"], r"""
#include <stdio.h>
#include <stdint.h>
int main(void) {
  int x = 7;
  uintptr_t i = (uintptr_t)&x;
  int *p = (int *)i;
  *p = 8;
  printf("%d\n", x);
  return 0;
}
""", {"concrete": "ok:8\n", "provenance": "ok:8\n", "strict": "ok",
      "cheri": "ok:8\n"}, features=("intptr",))

_add("tag_bits_roundtrip", ["Q7"], r"""
#include <stdio.h>
#include <stdint.h>
int main(void) {
  int x = 5;
  uintptr_t i = (uintptr_t)&x;
  i = i | 1;           /* stash a tag bit (alignment spare) */
  i = i & ~(uintptr_t)1;
  int *p = (int *)i;
  printf("%d\n", *p);
  return 0;
}
""", {"concrete": "ok:5\n", "provenance": "ok:5\n", "strict": "ok"},
    features=("intptr", "bit-stash"))

_add("fabricated_pointer", ["Q8"], r"""
#include <stdio.h>
int main(void) {
  int *p = (int *)0xdead0;   /* no object lives here */
  *p = 1;
  return 0;
}
""", {"concrete": "ub", "provenance": "ub", "strict": "ub"},
    features=("wild-int",))

# ---------------------------------------------------------------------------
# Multiple provenances (Q9): the per-CPU-variable idiom
# ---------------------------------------------------------------------------

_add("inter_object_offset", ["Q9"], r"""
#include <stdio.h>
#include <stdint.h>
int a = 10, b = 20;
int main(void) {
  intptr_t off = (intptr_t)&b - (intptr_t)&a;  /* inter-object offset */
  int *p = (int *)((intptr_t)&a + off);        /* reconstruct &b */
  *p = 30;                                     /* Linux per-CPU idiom */
  printf("b=%d\n", b);
  return 0;
}
""", {"concrete": "ok:b=30\n", "provenance": "ub", "strict": "ub"},
    features=("intptr", "inter-object"))

# ---------------------------------------------------------------------------
# Representation copying (Q13, Q14) — §2.3
# ---------------------------------------------------------------------------

_add("ptr_copy_memcpy", ["Q13"], r"""
#include <stdio.h>
#include <string.h>
int main(void) {
  int x = 9;
  int *p = &x, *q;
  memcpy(&q, &p, sizeof(p));
  *q = 10;
  printf("%d\n", x);
  return 0;
}
""", {"concrete": "ok:10\n", "provenance": "ok:10\n", "strict": "ok"},
    features=("ptr-bytes",))

_add("ptr_copy_userbytes", ["Q14"], r"""
#include <stdio.h>
int main(void) {
  int x = 3;
  int *p = &x, *q;
  unsigned char *src = (unsigned char *)&p;
  unsigned char *dst = (unsigned char *)&q;
  for (unsigned i = 0; i < sizeof(p); i++) dst[i] = src[i];
  *q = 4;                     /* Windows /GS-cookie-style copy */
  printf("%d\n", x);
  return 0;
}
""", {"concrete": "ok:4\n", "provenance": "ok:4\n", "strict": "ok"},
    features=("ptr-bytes",))

# ---------------------------------------------------------------------------
# Union punning (Q19, Q20)
# ---------------------------------------------------------------------------

_add("union_pun_pointer", ["Q19"], r"""
#include <stdio.h>
#include <stdint.h>
union u { int *p; uintptr_t i; };
int main(void) {
  int x = 1;
  union u v;
  v.p = &x;
  uintptr_t i = v.i;          /* read the other member */
  union u w;
  w.i = i;
  *w.p = 2;
  printf("%d\n", x);
  return 0;
}
""", {"concrete": "ok:2\n", "provenance": "ok:2\n", "strict": "ok"},
    features=("union-pun", "intptr"))

_add("union_pun_int", ["Q20"], r"""
#include <stdio.h>
union u { unsigned int i; unsigned char c[4]; };
int main(void) {
  union u v;
  v.i = 0x01020304u;
  printf("%u %u %u %u\n", v.c[0], v.c[1], v.c[2], v.c[3]);
  return 0;
}
""", {"concrete": "ok:4 3 2 1\n", "provenance": "ok:4 3 2 1\n",
      "strict": "ok"}, features=("union-pun",))

# ---------------------------------------------------------------------------
# Equality / relational comparison (Q25) — §2.1
# ---------------------------------------------------------------------------

_add("relational_cross_object", ["Q25", "Q26"], r"""
#include <stdio.h>
int a, b;
int main(void) {
  /* global lock ordering idiom */
  if (&a < &b) printf("a-first\n");
  else printf("b-first\n");
  return 0;
}
""", {"concrete": "ok", "provenance": "ok",
      "strict": "ub:Relational_distinct_objects"},
    features=("cross-relational",))

# ---------------------------------------------------------------------------
# Null pointers (Q28, Q30)
# ---------------------------------------------------------------------------

_add("null_representation", ["Q28"], r"""
#include <stdio.h>
#include <string.h>
int main(void) {
  int *p = 0;
  unsigned char bytes[sizeof(p)];
  memcpy(bytes, &p, sizeof(p));
  int zero = 1;
  for (unsigned i = 0; i < sizeof(p); i++)
    if (bytes[i] != 0) zero = 0;
  printf("all-zero=%d\n", zero);
  return 0;
}
""", {"concrete": "ok:all-zero=1\n", "provenance": "ok:all-zero=1\n",
      "strict": "ok"}, features=("ptr-bytes",))

_add("null_deref", ["Q30"], r"""
int main(void) { int *p = 0; return *p; }
""", {"concrete": "ub:Null_pointer_dereference",
      "provenance": "ub:Null_pointer_dereference",
      "strict": "ub:Null_pointer_dereference"})

# ---------------------------------------------------------------------------
# Pointer arithmetic (Q31, Q34, Q36) — §2.2
# ---------------------------------------------------------------------------

_add("oob_transient", ["Q31", "Q34"], r"""
#include <stdio.h>
int main(void) {
  int a[4] = {1,2,3,4};
  int *p = a + 7;      /* transiently out of bounds */
  p = p - 5;           /* back in bounds */
  printf("%d\n", *p);  /* a[2] */
  return 0;
}
""", {"concrete": "ok:3\n", "provenance": "ok:3\n",
      "strict": "ub:Out_of_bounds_pointer_arithmetic",
      "cheri": "ok:3\n"}, features=("oob",))

_add("deref_addrof_noop", ["Q36"], r"""
#include <stdio.h>
int main(void) {
  int a[2] = {1, 2};
  int *end = &a[2];          /* one-past: no access */
  int *p = &*end;            /* &* is a no-op */
  printf("%d\n", (int)(p - a));
  return 0;
}
""", {"concrete": "ok:2\n", "provenance": "ok:2\n", "strict": "ok"})

# ---------------------------------------------------------------------------
# Struct/union relations (Q39, Q42)
# ---------------------------------------------------------------------------

_add("first_member_cast", ["Q39"], r"""
#include <stdio.h>
struct s { int head; int tail; };
int main(void) {
  struct s v = { 5, 6 };
  int *p = (int *)&v;        /* pointer to first member */
  *p = 7;
  printf("%d %d\n", v.head, v.tail);
  return 0;
}
""", {"concrete": "ok:7 6\n", "provenance": "ok:7 6\n",
      "strict": "ok"})

_add("container_of", ["Q42"], r"""
#include <stdio.h>
#include <stddef.h>
struct outer { int a; int inner; int b; };
int main(void) {
  struct outer o = { 1, 2, 3 };
  int *ip = &o.inner;
  struct outer *back = (struct outer *)
      ((char *)ip - offsetof(struct outer, inner));
  printf("%d %d %d\n", back->a, back->inner, back->b);
  return 0;
}
""", {"concrete": "ok:1 2 3\n", "provenance": "ok:1 2 3\n",
      "strict": "ok"}, features=("container-of",))

# ---------------------------------------------------------------------------
# Lifetime (Q44, Q47)
# ---------------------------------------------------------------------------

_add("dangling_inspect", ["Q44"], r"""
#include <stdio.h>
#include <stdlib.h>
#include <stdint.h>
int main(void) {
  int *p = malloc(sizeof(int));
  uintptr_t before = (uintptr_t)p;
  free(p);
  uintptr_t after = (uintptr_t)p;   /* inspect dangling value */
  printf("stable=%d\n", before == after);
  return 0;
}
""", {"concrete": "ok:stable=1\n", "provenance": "ok:stable=1\n",
      "strict": "ok:stable=1\n"}, features=("dangling",))

_add("use_after_free", ["Q47"], r"""
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 1;
  free(p);
  return *p;
}
""", {"concrete": "ub", "provenance": "ub:Access_dead_object",
      "strict": "ub"}, features=("dangling",))

_add("wild_access", ["Q46"], r"""
int main(void) {
  int a[2] = {0, 0};
  return a[5];
}
""", {"concrete": "ub", "provenance": "ub:Access_wrong_provenance",
      "strict": "ub"})

# ---------------------------------------------------------------------------
# Unspecified values (Q43, Q48-Q50, Q54, Q56) — §2.4
# ---------------------------------------------------------------------------

_add("uninit_read", ["Q48"], r"""
#include <stdio.h>
int main(void) {
  unsigned int x;      /* never initialised */
  unsigned int y = x;  /* copy it */
  printf("copied\n");
  return 0;
}
""", {"concrete": "ok:copied\n", "provenance": "ok:copied\n",
      "strict": "ub:Read_uninitialised"}, features=("uninit",))

_add("unspec_propagation", ["Q43"], r"""
#include <stdio.h>
int main(void) {
  unsigned int x;
  unsigned int y = x + 1;   /* unspecified propagates (unsigned) */
  printf("%u\n", y);
  return 0;
}
""", {"concrete": "ok", "provenance": "ok:<unspec>\n",
      "strict": "ub:Read_uninitialised"}, features=("uninit",))

_add("unspec_to_library", ["Q49"], r"""
#include <stdio.h>
int main(void) {
  unsigned int x;
  printf("%u\n", x);   /* unspecified straight into printf */
  return 0;
}
""", {"concrete": "ok", "provenance": "ok:<unspec>\n",
      "strict": "ub:Read_uninitialised"}, features=("uninit",))

_add("unspec_control_flow", ["Q50"], r"""
int main(void) {
  unsigned int x;
  if (x) return 1;     /* control-flow choice on unspecified */
  return 0;
}
""", {"concrete": "ok", "provenance":
      "ub:Unspecified_value_control_flow",
      "strict": "ub:Read_uninitialised"}, features=("uninit",))

_add("copy_partial_struct", ["Q54"], r"""
#include <stdio.h>
struct pair { int a; int b; };
int main(void) {
  struct pair p;
  p.a = 1;             /* p.b stays uninitialised */
  struct pair q = p;   /* copying partially-initialised struct */
  printf("%d\n", q.a);
  return 0;
}
""", {"concrete": "ok:1\n", "provenance": "ok:1\n",
      "strict": "ok:1\n"}, features=("uninit",))

_add("uninit_stability", ["Q56"], r"""
#include <stdio.h>
int main(void) {
  unsigned int x;
  unsigned int a = x, b = x;
  printf("%d\n", a == b);   /* stable? (§2.4 options 3 vs 4) */
  return 0;
}
""", {"concrete": "ok:1\n", "provenance": "ub",
      "strict": "ub:Read_uninitialised"}, features=("uninit",),
    exhaustive=False)

# ---------------------------------------------------------------------------
# Padding (Q60-Q63) — §2.5
# ---------------------------------------------------------------------------

_PADDING_DECL = r"""
#include <stdio.h>
#include <string.h>
struct padded { char c; /* 3 bytes padding */ int i; };
"""

_add("padding_persistence", ["Q60"], _PADDING_DECL + r"""
int main(void) {
  struct padded s;
  unsigned char *bytes = (unsigned char *)&s;
  bytes[1] = 0xAB;           /* write a padding byte */
  s.c = 'x';                 /* member store */
  printf("pad=%x\n", bytes[1]);
  return 0;
}
""", {"concrete": "ok:pad=ab\n", "provenance": "ok:pad=ab\n",
      "strict": "ok"}, features=("padding",))

_add("padding_member_store", ["Q61"], _PADDING_DECL + r"""
int main(void) {
  struct padded s;
  memset(&s, 0, sizeof(s));
  s.c = 'x';                 /* does this clobber padding? */
  unsigned char *bytes = (unsigned char *)&s;
  printf("pad=%d\n", bytes[1]);
  return 0;
}
""", {"concrete": "ok:pad=0\n", "provenance": "ok:pad=0\n",
      "strict": "ok"}, features=("padding",))

_add("padding_struct_assign", ["Q62"], _PADDING_DECL + r"""
int main(void) {
  struct padded a, b;
  memset(&a, 0xFF, sizeof(a));
  a.c = 1; a.i = 2;
  b = a;                     /* whole-struct store */
  unsigned char *bytes = (unsigned char *)&b;
  /* padding of b is unspecified after struct assignment */
  printf("c=%d i=%d\n", b.c, b.i);
  return 0;
}
""", {"concrete": "ok:c=1 i=2\n", "provenance": "ok:c=1 i=2\n",
      "strict": "ok"}, features=("padding",))

_add("padding_memset_cas", ["Q63"], _PADDING_DECL + r"""
int main(void) {
  struct padded a, b;
  memset(&a, 0, sizeof(a));
  memset(&b, 0, sizeof(b));
  a.c = 7; a.i = 9; b.c = 7; b.i = 9;
  printf("bitwise-equal=%d\n", memcmp(&a, &b, sizeof(a)) == 0);
  return 0;
}
""", {"concrete": "ok:bitwise-equal=1\n",
      "provenance": "ok:bitwise-equal=1\n", "strict": "ok"},
    features=("padding", "memcmp"))

# ---------------------------------------------------------------------------
# Effective types (Q73, Q75, Q77) — §2.6
# ---------------------------------------------------------------------------

_add("effective_type_basic", ["Q73"], r"""
#include <stdio.h>
#include <stdlib.h>
int main(void) {
  void *m = malloc(8);
  float *f = m;
  *f = 1.0f;                 /* effective type becomes float */
  int *i = m;
  printf("%d\n", *i != 0);   /* int read of float-typed memory */
  return 0;
}
""", {"concrete": "ok", "provenance": "ok",
      "strict": "ub:Effective_type_mismatch"}, features=("tbaa",))

_add("char_array_as_heap", ["Q75"], r"""
#include <stdio.h>
static unsigned char arena[64];
int main(void) {
  int *slot = (int *)arena;   /* use char array as an allocator */
  slot[0] = 11;
  slot[1] = 22;
  printf("%d %d\n", slot[0], slot[1]);
  return 0;
}
""", {"concrete": "ok:11 22\n", "provenance": "ok:11 22\n",
      "strict": "ub:Effective_type_mismatch"}, features=("tbaa",))

_add("effective_type_subobject", ["Q77"], r"""
#include <stdio.h>
#include <stdlib.h>
int main(void) {
  long *l = malloc(sizeof(long));
  *l = 5L;
  int *i = (int *)l;
  printf("%d\n", (int)(*i >= 0));   /* int read of long-typed mem */
  return 0;
}
""", {"concrete": "ok", "provenance": "ok",
      "strict": "ub:Effective_type_mismatch"}, features=("tbaa",))

# ---------------------------------------------------------------------------
# Sequencing / unsequenced races (§5.6)
# ---------------------------------------------------------------------------

_add("unsequenced_race", [], r"""
int main(void) {
  int x = 0;
  int y = (x = 1) + (x = 2);   /* two unsequenced stores */
  return y;
}
""", {"concrete": "ub:Unsequenced_race",
      "provenance": "ub:Unsequenced_race",
      "strict": "ub:Unsequenced_race"})

_add("postfix_self_assign", [], r"""
int main(void) {
  int x = 0;
  x = x++;                     /* classic §6.5p2 example */
  return x;
}
""", {"concrete": "ub:Unsequenced_race",
      "provenance": "ub:Unsequenced_race",
      "strict": "ub:Unsequenced_race"})

# ---------------------------------------------------------------------------
# Signed overflow and shifts (§5.5, Fig. 3)
# ---------------------------------------------------------------------------

_add("signed_overflow", [], r"""
int main(void) {
  int x = 2147483647;
  return x + 1;                /* signed overflow: UB */
}
""", {"concrete": "ub:Exceptional_condition",
      "provenance": "ub:Exceptional_condition",
      "strict": "ub:Exceptional_condition"})

_add("shift_too_large", ["Q52"], r"""
int main(void) {
  int x = 1;
  return x << 33;              /* §6.5.7p3 */
}
""", {"concrete": "ub:Shift_too_large",
      "provenance": "ub:Shift_too_large",
      "strict": "ub:Shift_too_large"})

_add("negative_shift", ["Q52"], r"""
int main(void) {
  int x = 1;
  int n = -1;
  return x << n;
}
""", {"concrete": "ub:Negative_shift",
      "provenance": "ub:Negative_shift",
      "strict": "ub:Negative_shift"})

_add("unsigned_wraparound", [], r"""
#include <stdio.h>
int main(void) {
  unsigned int x = 4294967295u;
  printf("%u\n", x + 1u);      /* defined: wraps to 0 */
  return 0;
}
""", {"concrete": "ok:0\n", "provenance": "ok:0\n",
      "strict": "ok:0\n"})

_add("minus_one_lt_unsigned", [], r"""
#include <stdio.h>
int main(void) {
  printf("%d\n", -1 < (unsigned int)0);  /* §5.5: evaluates to 0 */
  return 0;
}
""", {"concrete": "ok:0\n", "provenance": "ok:0\n",
      "strict": "ok:0\n"})

# ---------------------------------------------------------------------------
# Additional coverage across the question categories
# ---------------------------------------------------------------------------

_add("cond_provenance_choice", ["Q12"], r"""
#include <stdio.h>
int a = 1, b = 2;
int main(void) {
  int flag = 1;
  int *p = flag ? &a : &b;   /* chosen operand's provenance flows */
  *p = 10;
  printf("%d %d\n", a, b);
  return 0;
}
""", {"concrete": "ok:10 2\n", "provenance": "ok:10 2\n",
      "strict": "ok:10 2\n"})

_add("same_array_relational", ["Q27"], r"""
#include <stdio.h>
int main(void) {
  int a[8];
  int *lo = &a[1], *hi = &a[6];
  printf("%d %d\n", lo < hi, hi <= lo);
  return 0;
}
""", {"concrete": "ok:1 0\n", "provenance": "ok:1 0\n",
      "strict": "ok:1 0\n"})

_add("computed_zero_is_null", ["Q29"], r"""
#include <stdio.h>
int main(void) {
  int z = 0;
  int *p = (int *)(z + 0);   /* computed zero converts to null */
  printf("%d\n", p == 0);
  return 0;
}
""", {"concrete": "ok:1\n", "provenance": "ok:1\n", "strict": "ok"})

_add("one_past_arithmetic", ["Q32"], r"""
#include <stdio.h>
int main(void) {
  int a[4] = {1, 2, 3, 4};
  int *end = a + 4;          /* one past: always permitted */
  int sum = 0;
  for (int *p = a; p != end; p++) sum += *p;
  printf("%d\n", sum);
  return 0;
}
""", {"concrete": "ok:10\n", "provenance": "ok:10\n",
      "strict": "ok:10\n"})

_add("ptr_cast_roundtrip", ["Q37"], r"""
#include <stdio.h>
int main(void) {
  int x = 6;
  void *v = &x;
  char *c = (char *)v;
  int *back = (int *)c;      /* casts preserve address+provenance */
  *back = 7;
  printf("%d\n", x);
  return 0;
}
""", {"concrete": "ok:7\n", "provenance": "ok:7\n",
      "strict": "ok:7\n"})

_add("union_member_overwrite", ["Q57"], r"""
#include <stdio.h>
union u { unsigned int i; unsigned char c[4]; };
int main(void) {
  union u v;
  v.i = 0xAABBCCDDu;
  v.c[0] = 0x11;             /* partial overwrite via other member */
  printf("%x\n", v.i);
  return 0;
}
""", {"concrete": "ok:aabbcc11\n", "provenance": "ok:aabbcc11\n",
      "strict": "ok"}, features=("union-pun",))

_add("padding_byte_read", ["Q64"], r"""
#include <stdio.h>
#include <string.h>
struct padded { char c; int i; };
int main(void) {
  struct padded s;
  memset(&s, 0x5A, sizeof(s));
  unsigned char *bytes = (unsigned char *)&s;
  printf("%x\n", bytes[1]);  /* reading a padding byte via char* */
  return 0;
}
""", {"concrete": "ok:5a\n", "provenance": "ok:5a\n", "strict": "ok"},
    features=("padding",))

_add("calloc_zero_padding", ["Q66"], r"""
#include <stdio.h>
#include <stdlib.h>
struct padded { char c; int i; };
int main(void) {
  struct padded *s = calloc(1, sizeof(struct padded));
  unsigned char *bytes = (unsigned char *)s;
  int zeroed = 1;
  for (unsigned k = 0; k < sizeof(struct padded); k++)
    if (bytes[k] != 0) zeroed = 0;
  printf("%d\n", zeroed);
  free(s);
  return 0;
}
""", {"concrete": "ok:1\n", "provenance": "ok:1\n",
      "strict": "ok:1\n"}, features=("padding",))

_add("char_access_escapes_tbaa", ["Q74"], r"""
#include <stdio.h>
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 0x01020304;
  unsigned char *c = (unsigned char *)p;  /* char access: always ok */
  printf("%d\n", c[0]);
  free(p);
  return 0;
}
""", {"concrete": "ok:4\n", "provenance": "ok:4\n",
      "strict": "ok:4\n"}, features=("tbaa",))

_add("member_after_whole_struct_write", ["Q76"], r"""
#include <stdio.h>
struct s { int a; int b; };
int main(void) {
  struct s v, w = { 7, 8 };
  v = w;                     /* whole-struct write */
  printf("%d\n", v.b);       /* member-typed read */
  return 0;
}
""", {"concrete": "ok:8\n", "provenance": "ok:8\n",
      "strict": "ok:8\n"})

_add("pointer_bytes_stable", ["Q22"], r"""
#include <stdio.h>
#include <string.h>
int main(void) {
  int x = 1;
  int *p = &x;
  unsigned char a[sizeof(p)], b[sizeof(p)];
  memcpy(a, &p, sizeof(p));
  memcpy(b, &p, sizeof(p));  /* two reads of the representation */
  printf("%d\n", memcmp(a, b, sizeof(p)) == 0);
  return 0;
}
""", {"concrete": "ok:1\n", "provenance": "ok:1\n",
      "strict": "ok:1\n"}, features=("ptr-bytes",))

_add("dangling_equality", ["Q45"], r"""
#include <stdio.h>
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  int *q = p;
  free(p);
  printf("%d\n", p == q);    /* using (not deref'ing) dangling */
  return 0;
}
""", {"concrete": "ok:1\n", "provenance": "ok:1\n",
      "strict": "ok:1\n"}, features=("dangling",))
