"""``python -m repro.testsuite`` — golden-verdict maintenance.

Default mode checks the live suite against the checked-in goldens
(exit 1 on any divergence); ``--update-goldens`` regenerates them
after a deliberate semantics change::

    python -m repro.testsuite                    # conformance check
    python -m repro.testsuite --update-goldens   # re-pin verdicts
    python -m repro.testsuite --models concrete,provenance --tests q1
"""

from __future__ import annotations

import argparse
import sys

from ..pipeline import MODELS
from .goldens import (
    compute_verdicts, default_golden_path, diff_goldens, load_goldens,
    update_goldens,
)
from .programs import TESTS


def _csv(text):
    return [t.strip() for t in text.split(",") if t.strip()]


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.testsuite",
        description="Check (default) or regenerate the golden-verdict "
                    "conformance suite")
    p.add_argument("--update-goldens", action="store_true",
                   help="recompute every pinned behaviour set and "
                        "rewrite the golden file")
    p.add_argument("--path", default=None, metavar="FILE",
                   help=f"golden file (default: "
                        f"{default_golden_path()})")
    p.add_argument("--models", default=None, metavar="M1,M2,...",
                   help="restrict to these memory models")
    p.add_argument("--tests", default=None, metavar="T1,T2,...",
                   help="restrict to these test names")
    p.add_argument("--explore-store", default=None, metavar="DIR",
                   help="route explorations through an exploration-"
                        "record store (incremental recomputation)")
    args = p.parse_args(argv)

    models = _csv(args.models) if args.models else None
    if models:
        unknown = [m for m in models if m not in MODELS]
        if unknown:
            print(f"unknown model(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    names = _csv(args.tests) if args.tests else None
    if names:
        unknown = [n for n in names if n not in TESTS]
        if unknown:
            print(f"unknown test(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    store = args.explore_store
    if store is not None:
        from ..farm.explorestore import ExploreStore
        store = ExploreStore(store)

    if args.update_goldens:
        path = update_goldens(args.path, models=models, names=names,
                              store=store)
        doc = load_goldens(path)
        cells = sum(len(c) for c in doc["verdicts"].values())
        print(f"pinned {len(doc['verdicts'])} tests x "
              f"{len(doc['models'])} models ({cells} cells) -> {path}")
        return 0

    try:
        doc = load_goldens(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load goldens: {exc}", file=sys.stderr)
        return 2
    live = compute_verdicts(
        models=models if models is not None else doc["models"],
        names=names,
        max_paths=doc["max_paths"], max_steps=doc["max_steps"],
        store=store)
    lines = diff_goldens(doc, live)
    if lines:
        print("\n".join(lines))
        print(f"{len(lines)} golden cell(s) diverged", file=sys.stderr)
        return 1
    cells = sum(len(c) for c in live.values())
    print(f"{cells} golden cells conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
