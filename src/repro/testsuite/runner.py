"""Run the de facto test suite against memory models and tool personae
and check verdicts against expectations (the paper's "experimental data
for our test suite" methodology, §2-§3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dynamics.driver import Outcome
from ..errors import CerberusError
from ..pipeline import explore_c, run_c
from .programs import TESTS, TestCase


@dataclass
class TestResult:
    name: str
    model: str
    verdict: str           # "ok:<stdout>" | "ub:<Name>" | "error:..."
    expected: Optional[str]
    matches: Optional[bool]
    stdout: str = ""


@dataclass
class SuiteReport:
    results: List[TestResult] = field(default_factory=list)

    def passed(self) -> List[TestResult]:
        return [r for r in self.results if r.matches]

    def failed(self) -> List[TestResult]:
        return [r for r in self.results if r.matches is False]

    def flagged(self) -> List[TestResult]:
        return [r for r in self.results if r.verdict.startswith("ub")]

    def table(self) -> str:
        lines = [f"{'test':32s} {'model':12s} {'verdict':36s} ok"]
        for r in self.results:
            status = {True: "yes", False: "NO", None: "-"}[r.matches]
            lines.append(f"{r.name:32s} {r.model:12s} "
                         f"{r.verdict:36s} {status}")
        return "\n".join(lines)


def _verdict_of(outcome: Outcome) -> str:
    if outcome.status == "ub":
        return f"ub:{outcome.ub.name}" if outcome.ub else "ub"
    if outcome.status in ("done", "exit"):
        return f"ok:{outcome.stdout}"
    if outcome.status == "abort":
        return "abort"
    if outcome.status == "timeout":
        return "timeout"
    return f"error:{outcome.error}"


def _matches(verdict: str, expected: str) -> bool:
    if expected == "either":
        return True
    if expected == "ok":
        return verdict.startswith("ok:")
    if expected == "ub":
        return verdict.startswith("ub")
    return verdict == expected


def run_test(test: TestCase, model: str,
             max_steps: int = 400_000) -> TestResult:
    expected = test.expect.get(model)
    try:
        if test.exhaustive:
            res = explore_c(test.source, model=model, max_paths=64,
                            max_steps=max_steps)
            outcomes = res.distinct()
            verdicts = sorted({_verdict_of(o) for o in outcomes})
            verdict = " | ".join(verdicts)
            if expected == "either":
                matches = True
            elif expected is None:
                matches = None
            else:
                matches = all(_matches(v, expected) for v in verdicts)
            return TestResult(test.name, model, verdict, expected,
                              matches,
                              outcomes[0].stdout if outcomes else "")
        outcome = run_c(test.source, model=model, max_steps=max_steps)
        verdict = _verdict_of(outcome)
        matches = None if expected is None else _matches(verdict,
                                                         expected)
        return TestResult(test.name, model, verdict, expected, matches,
                          outcome.stdout)
    except CerberusError as exc:
        verdict = f"error:{type(exc).__name__}"
        matches = None if expected is None else False
        return TestResult(test.name, model, verdict, expected, matches)


def run_suite(model: str, names: Optional[List[str]] = None,
              max_steps: int = 400_000) -> SuiteReport:
    report = SuiteReport()
    for name in (names or sorted(TESTS)):
        report.results.append(run_test(TESTS[name], model, max_steps))
    return report
