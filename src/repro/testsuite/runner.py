"""Run the de facto test suite against memory models and tool personae
and check verdicts against expectations (the paper's "experimental data
for our test suite" methodology, §2-§3).

Sweeps are compile-once: :func:`run_test_many` / :func:`run_suite_many`
translate each test program a single time per implementation
environment and execute the shared Core artifact under every requested
model.  ``run_suite_many(jobs=, store=, shard=)`` additionally routes
the sweep through the farm (:mod:`repro.farm.campaign`): parallel
worker processes, a persistent cross-process artifact store, and
deterministic suite sharding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dynamics.driver import Outcome
from ..errors import CerberusError
from ..pipeline import (
    CompiledProgram, compile_c, compile_for_model, impl_for_model,
)
from .programs import TESTS, TestCase


@dataclass
class TestResult:
    name: str
    model: str
    verdict: str           # "ok:<stdout>" | "ub:<Name>" | "error:..."
    expected: Optional[str]
    matches: Optional[bool]
    stdout: str = ""


@dataclass
class SuiteReport:
    results: List[TestResult] = field(default_factory=list)

    def passed(self) -> List[TestResult]:
        return [r for r in self.results if r.matches]

    def failed(self) -> List[TestResult]:
        return [r for r in self.results if r.matches is False]

    def flagged(self) -> List[TestResult]:
        return [r for r in self.results if r.verdict.startswith("ub")]

    def table(self) -> str:
        lines = [f"{'test':32s} {'model':12s} {'verdict':36s} ok"]
        for r in self.results:
            status = {True: "yes", False: "NO", None: "-"}[r.matches]
            lines.append(f"{r.name:32s} {r.model:12s} "
                         f"{r.verdict:36s} {status}")
        return "\n".join(lines)


def _verdict_of(outcome: Outcome) -> str:
    if outcome.status == "ub":
        return f"ub:{outcome.ub.name}" if outcome.ub else "ub"
    if outcome.status in ("done", "exit"):
        return f"ok:{outcome.stdout}"
    if outcome.status == "abort":
        return "abort"
    if outcome.status == "timeout":
        return "timeout"
    return f"error:{outcome.error}"


def _matches(verdict: str, expected: str) -> bool:
    if expected == "either":
        return True
    if expected == "ok":
        return verdict.startswith("ok:")
    if expected == "ub":
        return verdict.startswith("ub")
    return verdict == expected


def _error_result(test: TestCase, model: str,
                  exc: CerberusError) -> TestResult:
    expected = test.expect.get(model)
    matches = None if expected is None else False
    return TestResult(test.name, model, f"error:{type(exc).__name__}",
                      expected, matches)


def run_test(test: TestCase, model: str,
             max_steps: int = 400_000,
             program: Optional[CompiledProgram] = None) -> TestResult:
    """Check one test under one model; pass a pre-compiled ``program``
    to skip the front end (batch sweeps do)."""
    expected = test.expect.get(model)
    try:
        if program is None:
            program = compile_for_model(test.source, model)
        if test.exhaustive:
            res = program.explore(model, max_paths=64,
                                  max_steps=max_steps)
            outcomes = res.distinct()
            verdicts = sorted({_verdict_of(o) for o in outcomes})
            verdict = " | ".join(verdicts)
            if expected == "either":
                matches = True
            elif expected is None:
                matches = None
            else:
                matches = all(_matches(v, expected) for v in verdicts)
            return TestResult(test.name, model, verdict, expected,
                              matches,
                              outcomes[0].stdout if outcomes else "")
        outcome = program.run(model, max_steps=max_steps)
        verdict = _verdict_of(outcome)
        matches = None if expected is None else _matches(verdict,
                                                         expected)
        return TestResult(test.name, model, verdict, expected, matches,
                          outcome.stdout)
    except CerberusError as exc:
        return _error_result(test, model, exc)


def run_test_many(test: TestCase, models: List[str],
                  max_steps: int = 400_000) -> List[TestResult]:
    """Check one test under many models with one front-end translation
    per implementation environment."""
    programs: Dict[str, object] = {}
    results: List[TestResult] = []
    for model in models:
        impl = impl_for_model(model)
        entry = programs.get(impl.name)
        if entry is None:
            try:
                entry = compile_c(test.source, impl)
            except CerberusError as exc:
                entry = exc
            programs[impl.name] = entry
        if isinstance(entry, CerberusError):
            results.append(_error_result(test, model, entry))
        else:
            results.append(run_test(test, model, max_steps,
                                    program=entry))
    return results


def run_suite(model: str, names: Optional[List[str]] = None,
              max_steps: int = 400_000) -> SuiteReport:
    return run_suite_many([model], names, max_steps)


def run_suite_many(models: List[str],
                   names: Optional[List[str]] = None,
                   max_steps: int = 400_000,
                   jobs: int = 1,
                   store=None,
                   shard: Optional[Tuple[int, int]] = None
                   ) -> SuiteReport:
    """The per-test × per-model sweep, compile-once per test program.

    ``jobs`` > 1 fans tests out across farm worker processes;
    ``store`` (an :class:`~repro.farm.store.ArtifactStore` or a
    directory path) persists compiled artifacts across processes and
    invocations; ``shard=(i, n)`` runs the i-th of n deterministic
    slices of the suite.  Verdicts are identical to the serial loop."""
    if jobs > 1 or store is not None or shard is not None:
        from ..farm.campaign import suite_campaign
        report, _ = suite_campaign(models, names, jobs=jobs,
                                   store=store, shard=shard or (0, 1),
                                   max_steps=max_steps)
        return report
    report = SuiteReport()
    for name in (names or sorted(TESTS)):
        report.results.extend(run_test_many(TESTS[name], models,
                                            max_steps))
    return report
