"""The de facto design-space question registry and executable test suite
(paper §2: 85 questions in 22 categories, supported by semantic test
cases)."""

from .questions import (
    Question, QUESTIONS, CATEGORIES, category_counts, clarity_split,
)
from .programs import TESTS, TestCase
from .runner import (
    run_test, run_test_many, run_suite, run_suite_many, SuiteReport,
)
from .goldens import (
    compute_verdicts, diff_goldens, load_goldens, update_goldens,
)

__all__ = [
    "Question", "QUESTIONS", "CATEGORIES", "category_counts",
    "clarity_split", "TESTS", "TestCase", "run_test", "run_test_many",
    "run_suite", "run_suite_many", "SuiteReport",
    "compute_verdicts", "diff_goldens", "load_goldens",
    "update_goldens",
]
