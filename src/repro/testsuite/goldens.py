"""Golden-verdict conformance suite.

The per-question verdicts this reproduction computes — the distinct
behaviour set of every de facto test program under every memory object
model — are themselves a corpus worth pinning: they *are* the paper's
reproduced answers.  This module freezes them as a checked-in JSON
document (``tests/goldens/verdicts.json``) so every future change is
diffed against them: a refactor that silently flips one verdict, adds
a behaviour, or moves a UB site fails ``tests/test_goldens.py``
instead of drifting unnoticed.

Each golden cell is the sorted list of :meth:`Outcome.summary` strings
of one bounded, deterministic exploration (``dfs``, the
oracle-of-record, with a fixed path/step budget) — so UB behaviours
pin both the UB *name* and its source *site*, and nondeterministic
programs pin their whole behaviour set, not one sampled path.

Regenerate deliberately after a semantics change::

    python -m repro.testsuite --update-goldens

and review the diff like any other source change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import CerberusError
from ..pipeline import MODELS, compile_for_model
from .programs import TESTS

#: Bump when the golden document layout (not the verdicts) changes.
GOLDEN_SCHEMA = 1

#: The bounded deterministic exploration every golden cell records.
GOLDEN_MAX_PATHS = 64
GOLDEN_MAX_STEPS = 400_000

Verdicts = Dict[str, Dict[str, List[str]]]


def default_golden_path() -> Path:
    """``tests/goldens/verdicts.json`` in a source checkout (three
    levels above this package: ``src/repro/testsuite``)."""
    return (Path(__file__).resolve().parents[3]
            / "tests" / "goldens" / "verdicts.json")


def behaviour_set(source: str, model: str,
                  max_paths: int = GOLDEN_MAX_PATHS,
                  max_steps: int = GOLDEN_MAX_STEPS,
                  store=None,
                  backend: str = "compiled") -> List[str]:
    """The golden form of one test × model cell: the sorted distinct
    behaviour summaries of a bounded dfs exploration (UB name + site
    included), or a one-element ``error:<Type>`` list when the front
    end rejects the program under that model's environment.
    ``backend`` selects the per-path evaluator — goldens are pinned to
    be byte-identical under both back ends, which is exactly what
    ``tests/test_compile_backend.py`` checks."""
    try:
        program = compile_for_model(source, model)
        result = program.explore(model, max_paths=max_paths,
                                 max_steps=max_steps, store=store,
                                 backend=backend)
    except CerberusError as exc:
        return [f"error:{type(exc).__name__}"]
    return sorted(o.summary() for o in result.distinct())


def compute_verdicts(models: Optional[Sequence[str]] = None,
                     names: Optional[Sequence[str]] = None,
                     max_paths: int = GOLDEN_MAX_PATHS,
                     max_steps: int = GOLDEN_MAX_STEPS,
                     store=None,
                     backend: str = "compiled") -> Verdicts:
    """Live verdicts for ``names`` × ``models`` (default: the whole
    suite across all registered memory models).  ``store`` optionally
    routes the explorations through an exploration-record store
    (:mod:`repro.farm.explorestore`), so golden regeneration rides the
    incremental re-exploration seam too; ``backend`` selects the
    evaluator back end for every cell."""
    model_list = list(models) if models is not None else list(MODELS)
    out: Verdicts = {}
    for name in (sorted(TESTS) if names is None else names):
        test = TESTS[name]
        out[name] = {
            model: behaviour_set(test.source, model,
                                 max_paths=max_paths,
                                 max_steps=max_steps, store=store,
                                 backend=backend)
            for model in model_list}
    return out


def golden_document(verdicts: Verdicts,
                    max_paths: int = GOLDEN_MAX_PATHS,
                    max_steps: int = GOLDEN_MAX_STEPS) -> dict:
    models = sorted({m for cells in verdicts.values() for m in cells})
    return {"schema": GOLDEN_SCHEMA,
            "max_paths": max_paths,
            "max_steps": max_steps,
            "models": models,
            "verdicts": verdicts}


def load_goldens(path=None) -> dict:
    path = default_golden_path() if path is None else Path(path)
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"golden schema {doc.get('schema')!r} != {GOLDEN_SCHEMA} "
            f"(regenerate with python -m repro.testsuite "
            f"--update-goldens)")
    return doc


def diff_goldens(doc: dict, live: Verdicts) -> List[str]:
    """Human-readable mismatches between a golden document and live
    verdicts: one line per divergent/missing cell, empty when they
    conform.  Cells absent from ``live`` (a partial recomputation) are
    skipped — only what was recomputed is compared."""
    golden: Verdicts = doc["verdicts"]
    lines: List[str] = []
    for name, cells in sorted(live.items()):
        pinned = golden.get(name)
        if pinned is None:
            lines.append(f"{name}: not pinned in goldens "
                         f"(--update-goldens to add it)")
            continue
        for model, behaviours in sorted(cells.items()):
            expected = pinned.get(model)
            if expected is None:
                lines.append(f"{name} [{model}]: model not pinned")
            elif expected != behaviours:
                lines.append(f"{name} [{model}]:\n"
                             f"  golden: {expected}\n"
                             f"  live:   {behaviours}")
    return lines


def update_goldens(path=None,
                   models: Optional[Sequence[str]] = None,
                   names: Optional[Sequence[str]] = None,
                   store=None) -> Path:
    """Recompute and write the golden document; returns the path.

    A restricted regeneration (``models`` and/or ``names`` subset)
    merges into the existing document instead of replacing it: cells
    outside the subset keep their pinned verdicts (pins for tests
    that no longer exist are dropped)."""
    path = default_golden_path() if path is None else Path(path)
    verdicts = compute_verdicts(models=models, names=names,
                                store=store)
    if (models is not None or names is not None) and path.exists():
        try:
            existing = load_goldens(path)["verdicts"]
        except (OSError, ValueError):
            existing = {}
        merged: Verdicts = {n: dict(c) for n, c in existing.items()
                            if n in TESTS}
        for name, cells in verdicts.items():
            merged.setdefault(name, {}).update(cells)
        verdicts = merged
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(golden_document(verdicts), f, indent=1,
                  sort_keys=True)
        f.write("\n")
    return path
