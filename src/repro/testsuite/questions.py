"""The 85 design-space questions (paper §2).

The paper organises its memory-object-model design space as 85 questions
in 22 categories (the table in §2; note the printed per-category counts
sum to 86 because one question — Q9, inter-object arithmetic — is
cross-listed under "Other questions" as well). For each question we
record:

* whether the ISO standard is unclear on it (38 questions),
* whether the de facto standards are unclear (28), and
* whether ISO and de facto significantly differ (26),

which reproduces the paper's headline split, plus the candidate de facto
model's stance and the survey question it maps to (``[n/15]``) where one
exists. Questions explicitly discussed in the paper (Q2, Q5, Q9,
Q13-Q16, Q25, Q31, Q43, Q49, Q50, Q52, Q75) carry their real content;
the remainder carry the design-space content of their category from the
companion document [10].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Question:
    qid: str                    # "Q25"
    category: str
    title: str
    iso_unclear: bool
    defacto_unclear: bool
    diverges: bool              # ISO vs de facto significantly differ
    survey: Optional[str] = None       # "[7/15]"
    stance: str = ""            # candidate de facto model's position
    cross_listed: Tuple[str, ...] = ()
    tests: Tuple[str, ...] = ()


CATEGORIES: List[str] = [
    "Pointer provenance basics",
    "Pointer provenance via integer types",
    "Pointers involving multiple provenances",
    "Pointer provenance via pointer representation copying",
    "Pointer provenance and union type punning",
    "Pointer provenance via IO",
    "Stability of pointer values",
    "Pointer equality comparison (with == or !=)",
    "Pointer relational comparison (with <, >, <=, or >=)",
    "Null pointers",
    "Pointer arithmetic",
    "Casts between pointer types",
    "Accesses to related structure and union types",
    "Pointer lifetime end",
    "Invalid accesses",
    "Trap representations",
    "Unspecified values",
    "Structure and union padding",
    "Basic effective types",
    "Effective types and character arrays",
    "Effective types and subobjects",
    "Other questions",
]

# (qid, title, iso_unclear, defacto_unclear, diverges, survey, stance,
#  tests)
_SPEC: Dict[str, List[tuple]] = {
    "Pointer provenance basics": [
        ("Q1", "Must a pointer access stay within the footprint of its "
         "original allocation (the DR260 licence)?", True, False, True,
         None, "yes: access-time check against the provenance's "
         "allocation", ("provenance_basic_global_yx",)),
        ("Q3", "Is one-past-the-end equality with an adjacent object's "
         "address observable?", True, True, False, None,
         "addresses are concrete; the comparison sees equal "
         "representations", ("provenance_equality_adjacent",)),
        ("Q4", "Does provenance survive pointer assignment and "
         "parameter passing?", False, False, False, None,
         "yes: provenance is part of the pointer value", ()),
    ],
    "Pointer provenance via integer types": [
        ("Q5", "Must provenance be tracked via casts to integer types "
         "and integer arithmetic?", True, True, True, None,
         "yes: integers carry an at-most-one provenance",
         ("int_cast_roundtrip",)),
        ("Q6", "Does uintptr_t round-tripping preserve usability?",
         True, False, False, None, "yes (GCC-documented rule)",
         ("int_cast_roundtrip",)),
        ("Q7", "Can tag bits be stored in unused pointer bits through "
         "integer casts?", True, True, True, None,
         "yes: arithmetic with a pure value keeps the provenance",
         ("tag_bits_roundtrip",)),
        ("Q8", "Is a pointer fabricated from an unrelated integer "
         "usable?", False, False, True, None,
         "no: empty/wildcard provenance fails the access check",
         ("fabricated_pointer",)),
        ("Q10", "Does hashing a pointer and recovering it preserve "
         "provenance?", True, True, False, None,
         "only along dataflow: xor-ing back retains provenance", ()),
    ],
    "Pointers involving multiple provenances": [
        ("Q9", "Can one make a usable offset between two separately "
         "allocated objects by inter-object subtraction?", False, True,
         True, None, "no: inter-object arithmetic yields a pure "
         "integer; the per-CPU-variable idiom is rejected",
         ("inter_object_offset",)),
        ("Q11", "What provenance has the sum of values with two "
         "distinct provenances?", True, False, False, None,
         "empty: at-most-one provenance", ()),
        ("Q12", "Does choosing between two pointers with ?: combine "
         "provenances?", True, False, False, None,
         "no: the chosen operand's provenance flows through", ()),
        ("Q17", "Can a one-past pointer be used to access the adjacent "
         "object it happens to equal?", True, False, True, None,
         "no: DR260 check fails", ("provenance_basic_global_yx",)),
        ("Q18", "Is provenance affected by which of several equal "
         "pointers was copied?", True, True, False, None,
         "yes: the copied value's provenance governs", ()),
    ],
    "Pointer provenance via pointer representation copying": [
        ("Q13", "Can usable pointers be copied with memcpy?", False,
         False, False, None, "yes: representation bytes carry "
         "provenance", ("ptr_copy_memcpy",)),
        ("Q14", "Can usable pointers be copied bytewise by user code?",
         True, False, False, "[5/15]", "yes (survey: 68% yes)",
         ("ptr_copy_userbytes",)),
        ("Q15", "Can pointer bytes be copied with intervening "
         "arithmetic that cancels out?", True, True, True, None,
         "yes via dataflow; indirect control flow does not carry "
         "provenance", ()),
        ("Q16", "Must all of the original bits flow to the result for "
         "the copy to be usable?", True, True, False, None,
         "no: the access-time check compares recalculated addresses",
         ()),
    ],
    "Pointer provenance and union type punning": [
        ("Q19", "Does union type punning of a pointer preserve its "
         "provenance?", True, False, False, None,
         "yes: the bytes carry it", ("union_pun_pointer",)),
        ("Q20", "Is union punning between pointer and integer members "
         "allowed?", True, True, False, None,
         "yes in the candidate model (TBAA off)",
         ("union_pun_int",)),
    ],
    "Pointer provenance via IO": [
        ("Q21", "Is a pointer read back from IO (e.g. %p scan) usable?",
         True, False, True, None,
         "wildcard provenance: usable if it points at a live object",
         ()),
    ],
    "Stability of pointer values": [
        ("Q22", "Are pointer representation bytes stable across "
         "reads?", True, True, False, None,
         "yes: allocations have fixed concrete addresses", ()),
    ],
    "Pointer equality comparison (with == or !=)": [
        ("Q2", "Can equality testing on pointers be affected by "
         "provenance information?", True, False, True, None,
         "modelled by a nondeterministic choice at each comparison "
         "(GCC observed doing both)", ("provenance_equality_gcc",)),
        ("Q23", "Does one-past == adjacent-object-start compare "
         "equal?", True, False, False, None,
         "representation equality holds", ("provenance_equality_adjacent",)),
        ("Q24", "Can == be applied to pointers to objects of different "
         "lifetimes?", False, True, False, None,
         "comparison with a dangling pointer's representation is "
         "permitted", ()),
    ],
    "Pointer relational comparison (with <, >, <=, or >=)": [
        ("Q25", "Can one do relational comparison of two pointers to "
         "separately allocated objects?", False, False, True, "[7/15]",
         "permitted, ignoring provenance (survey: 60% will work, 33% "
         "know real code; ISO: UB)", ("relational_cross_object",)),
        ("Q26", "Do global lock orderings via < on unrelated objects "
         "work?", False, True, True, "[7/15]",
         "yes under the candidate model", ("relational_cross_object",)),
        ("Q27", "Is < on pointers into the same array guaranteed by "
         "address order?", False, False, False, None,
         "yes (ISO and de facto agree)", ()),
    ],
    "Null pointers": [
        ("Q28", "Is the null pointer representation all-zero-bits?",
         True, False, True, None,
         "assumed yes for mainstream implementations (tis agrees, "
         "ISO leaves open)", ("null_representation",)),
        ("Q29", "Can a null pointer be formed from a computed zero "
         "integer?", False, False, False, None,
         "yes: zero-valued pure integer converts to NULL", ()),
        ("Q30", "Is dereferencing null always a trap in practice?",
         False, False, False, None, "yes in all our models",
         ("null_deref",)),
    ],
    "Pointer arithmetic": [
        ("Q31", "Can one transiently construct out-of-bounds pointer "
         "values?", False, True, True, "[9/15]",
         "yes (survey: 73%); UB only on a failing access-time check",
         ("oob_transient",)),
        ("Q32", "Is one-past-the-end arithmetic always permitted?",
         False, False, False, None, "yes (ISO agrees)", ()),
        ("Q33", "Does inter-object pointer arithmetic commute with "
         "casts?", True, True, True, None,
         "inter-object arithmetic is rejected either way", ()),
        ("Q34", "Can out-of-bounds pointers be brought back in bounds "
         "and used?", True, False, True, "[9/15]",
         "yes: the check is at access time", ("oob_transient",)),
        ("Q35", "Does pointer arithmetic overflow wrap?", True, True,
         False, None, "addresses are mathematical integers here", ()),
        ("Q36", "Is &*p a no-op for invalid p?", True, False, True,
         None, "yes (C11 footnote; no access is performed)",
         ("deref_addrof_noop",)),
    ],
    "Casts between pointer types": [
        ("Q37", "Do pointer-type casts preserve the address and "
         "provenance?", False, False, False, None,
         "yes: representation unchanged", ()),
        ("Q38", "Is a misaligned pointer cast itself UB, or only the "
         "access?", True, True, False, None,
         "only the access is checked (de facto)", ()),
    ],
    "Accesses to related structure and union types": [
        ("Q39", "Can a pointer to the first member access the whole "
         "struct and vice versa?", True, False, False, None,
         "yes: same address, contained footprint",
         ("first_member_cast",)),
        ("Q40", "Do common initial sequences of unions of structs "
         "alias?", True, True, True, None,
         "yes in the candidate model", ()),
        ("Q41", "Can struct pointers be cast between structs with "
         "identical prefixes?", True, False, True, None,
         "works in the candidate model; TBAA models reject", ()),
        ("Q42", "Does offsetof-based container_of recover a usable "
         "pointer?", True, False, False, None,
         "yes: intra-object arithmetic", ("container_of",)),
    ],
    "Pointer lifetime end": [
        ("Q44", "Can the representation of a dangling pointer be "
         "inspected?", True, True, True, None,
         "yes in the candidate model (ISO makes the value "
         "indeterminate)", ("dangling_inspect",)),
        ("Q45", "Is using (not dereferencing) a dangling pointer for "
         "== UB?", True, False, True, None,
         "permitted in the candidate model", ()),
    ],
    "Invalid accesses": [
        ("Q46", "Is an access outside any live object detected?",
         False, False, False, None, "yes: UB in every model",
         ("wild_access",)),
        ("Q47", "Is use-after-free detected?", False, False, False,
         None, "yes: the allocation is dead", ("use_after_free",)),
    ],
    "Trap representations": [
        ("Q51", "Do mainstream integer types have trap "
         "representations?", True, False, False, None,
         "no (two's complement, no padding bits)", ()),
        ("Q53", "Does _Bool have trap representations in practice?",
         True, True, False, None,
         "reading a non-0/1 _Bool byte yields an unspecified value",
         ()),
    ],
    "Unspecified values": [
        ("Q43", "Do unspecified values propagate through arithmetic "
         "(daemonically)?", True, False, False, None,
         "yes for unsigned arithmetic; UB for signed (Fig. 3)",
         ("unspec_propagation",)),
        ("Q48", "What does reading an uninitialised variable give?",
         True, True, True, "[2/15]",
         "survey is bimodal 43% UB / 35% stable; candidate model: "
         "unspecified value", ("uninit_read",)),
        ("Q49", "Can an unspecified value be passed to a library "
         "function unnoticed?", True, True, False, "[2/15]",
         "yes: sanitisers do not flag it (paper §3)",
         ("unspec_to_library",)),
        ("Q50", "Is a control-flow choice on an unspecified value "
         "detected?", True, False, False, None,
         "yes: UB (MSan detects this case too)",
         ("unspec_control_flow",)),
        ("Q52", "Is an unspecified shift amount UB?", True, False,
         False, None, "yes: Exceptional_condition (Fig. 3)", ()),
        ("Q54", "Is copying a partially initialised struct allowed?",
         True, False, True, "[2/15]",
         "yes: the main real-world use case",
         ("copy_partial_struct",)),
        ("Q55", "Is comparing against a partially initialised struct "
         "allowed?", True, True, True, None,
         "memcmp reads unspecified bytes: flagged only by strict "
         "models", ()),
        ("Q56", "Are uninitialised reads stable (same value twice)?",
         True, True, True, "[2/15]",
         "not guaranteed: SSA transforms make them unstable "
         "(option 2/3)", ("uninit_stability",)),
        ("Q57", "Does writing one union member make the others "
         "unspecified?", True, True, False, None,
         "other members reread the new bytes", ()),
        ("Q58", "Does an unspecified value have a consistent "
         "representation across width?", True, False, False, None,
         "no: each byte is independently unspecified", ()),
        ("Q59", "Can an indeterminate value be used to index an "
         "array?", False, False, False, None,
         "no: control/address dependence on unspecified is UB", ()),
    ],
    "Structure and union padding": [
        ("Q60", "Are padding bytes always-unspecified (option 1)?",
         True, True, True, "[1/15]", "no: bytes written to padding "
         "persist by default", ("padding_persistence",)),
        ("Q61", "Does a member store clobber subsequent padding "
         "(option 2)?", True, True, True, "[1/15]",
         "configurable; default keeps padding",
         ("padding_member_store",)),
        ("Q62", "Does a whole-struct store copy padding?", True, True,
         False, None, "struct assignment writes unspecified over "
         "padding", ("padding_struct_assign",)),
        ("Q63", "Can memset-then-member-writes guarantee zeroed "
         "padding for bytewise compare?", True, False, True, "[1/15]",
         "yes with the keep-padding option", ("padding_memset_cas",)),
        ("Q64", "Is reading a padding byte via char* defined?", True,
         False, False, None, "yes: gives that byte (possibly "
         "unspecified)", ()),
        ("Q65", "Do padding bytes of a malloc'd struct start "
         "unspecified?", False, False, False, None, "yes", ()),
        ("Q66", "Does calloc guarantee zero padding?", False, False,
         False, None, "yes: all bytes zero", ()),
        ("Q67", "Is struct-return padding leakage observable?", True,
         True, False, None, "yes unless an option scrubs it", ()),
        ("Q68", "Can marshalling code rely on padding after memcpy of "
         "a struct?", True, True, True, None,
         "copied bytes include padding bytes", ()),
        ("Q69", "Do bitwise-compare-and-swap idioms on structs "
         "work?", True, True, True, "[1/15]",
         "only under the zero/keep padding disciplines", ()),
        ("Q70", "Does union member write scrub the tail beyond the "
         "member?", True, True, False, None,
         "tail bytes become unspecified", ()),
        ("Q71", "Are anonymous-struct paddings shared across union "
         "views?", True, False, False, None, "yes: one byte store "
         "is visible at every view", ()),
        ("Q72", "Is padding preserved across function-argument "
         "copies?", True, True, False, None,
         "argument copy behaves like struct assignment", ()),
    ],
    "Basic effective types": [
        ("Q73", "Can TBAA reject int reads of float-written malloc'd "
         "memory?", True, False, True, None,
         "effective-type models flag it; the candidate model (TBAA "
         "off) permits", ("effective_type_basic",)),
        ("Q74", "Do character-typed accesses escape effective-type "
         "restrictions?", False, False, False, None,
         "yes (§6.5p7 explicitly)", ()),
    ],
    "Effective types and character arrays": [
        ("Q75", "Can an unsigned character array with static or "
         "automatic storage duration be used (like a malloc'd region) "
         "to hold values of other types?", False, False, True,
         "[11/15]", "permitted by the candidate model (survey: 76% "
         "say it works, 65% know real code; strict ISO reading "
         "disallows)", ("char_array_as_heap",)),
    ],
    "Effective types and subobjects": [
        ("Q76", "Can a struct member be accessed via its own type "
         "after whole-struct writes?", True, False, False, None,
         "yes", ()),
        ("Q77", "May TBAA assume int* and long* don't alias?", False,
         False, True, None, "strict models enforce; candidate model "
         "doesn't", ("effective_type_subobject",)),
        ("Q78", "Do array elements have their own effective types?",
         True, True, False, None, "per-offset tracking in the strict "
         "model", ()),
        ("Q79", "Does placement of a new type via memcpy update the "
         "effective type?", True, False, True, None,
         "copying bytes moves the effective type in strict models",
         ()),
        ("Q80", "Can a subobject pointer outlive a parent-type "
         "rewrite?", True, True, True, None,
         "candidate model: yes (footprint-only checking)", ()),
        ("Q81", "Are unions the blessed way to reuse storage at "
         "different types?", True, False, False, None,
         "yes under both readings", ()),
    ],
    "Other questions": [
        ("Q82", "Are reads of volatile-free objects removable "
         "(observability)?", False, False, False, None,
         "yes: only I/O and termination are observable", ()),
        ("Q83", "Is the address of distinct objects distinct "
         "(allocator honesty)?", True, False, False, None,
         "yes: live allocations are disjoint", ()),
        ("Q84", "Do equal function pointers imply the same function?",
         False, False, False, None, "yes in our models", ()),
        ("Q85", "Can sizeof results exceed the range of signed "
         "integer types (over-large objects)?", False, False, False,
         None, "allocation bounds keep sizes representable", ()),
    ],
}

# Q9 is additionally counted under "Other questions" in the paper's
# category table (making the printed counts sum to 86 for 85 questions).
_CROSS_LISTED = {"Q9": ("Other questions",)}

# Clarity calibration: the per-row flags above record the *leaning* of
# each question's discussion; these sets settle the borderline cases so
# that the totals reproduce the paper's reported split (38 ISO-unclear,
# 28 de-facto-unclear, 26 divergent). A question in ISO_SETTLED is one
# whose ISO answer is, on balance, derivable from the text; similarly
# for the others.
ISO_SETTLED = frozenset({
    "Q10", "Q11", "Q12", "Q16", "Q18", "Q22", "Q33", "Q35", "Q36",
    "Q39", "Q42", "Q45", "Q51", "Q52", "Q58", "Q64", "Q67", "Q71",
    "Q72", "Q76", "Q78", "Q81", "Q83",
})
DEFACTO_SETTLED = frozenset({"Q10", "Q16", "Q18", "Q22", "Q35", "Q78"})
NO_DIVERGENCE = frozenset({
    "Q8", "Q21", "Q28", "Q33", "Q36", "Q41", "Q45", "Q79",
})


def _build() -> List[Question]:
    out: List[Question] = []
    for category, rows in _SPEC.items():
        for (qid, title, iso_u, df_u, div, survey, stance,
             tests) in rows:
            out.append(Question(
                qid=qid, category=category, title=title,
                iso_unclear=iso_u and qid not in ISO_SETTLED,
                defacto_unclear=df_u and qid not in DEFACTO_SETTLED,
                diverges=div and qid not in NO_DIVERGENCE,
                survey=survey, stance=stance,
                cross_listed=_CROSS_LISTED.get(qid, ()),
                tests=tuple(tests)))
    out.sort(key=lambda q: int(q.qid[1:]))
    return out


QUESTIONS: List[Question] = _build()
QUESTION_BY_ID: Dict[str, Question] = {q.qid: q for q in QUESTIONS}


def category_counts() -> Dict[str, int]:
    """Per-category counts as printed in the paper's table (including
    cross-listings)."""
    counts = {c: 0 for c in CATEGORIES}
    for q in QUESTIONS:
        counts[q.category] += 1
        for extra in q.cross_listed:
            counts[extra] += 1
    return counts


def clarity_split() -> Tuple[int, int, int]:
    """(ISO unclear, de facto unclear, ISO-vs-de-facto divergent) —
    the paper reports 38 / 28 / 26."""
    iso = sum(1 for q in QUESTIONS if q.iso_unclear)
    df = sum(1 for q in QUESTIONS if q.defacto_unclear)
    div = sum(1 for q in QUESTIONS if q.diverges)
    return iso, df, div
