"""Cabs -> Ail desugaring (paper §5.1, "Cabs_to_Ail").

Handles identifier scoping (linkage, namespaces, identifier kinds),
function prototypes and definitions (merging, hiding), normalisation of
syntactic C types into canonical forms, string literals (implicitly
allocated objects), enums (replaced by integers), and desugaring of
``for``/``do``-``while`` loops into a unified while form. Where the
program is ill-formed it reports which constraint of the standard is
violated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..cabs import ast as C
from ..ctypes import convert
from ..ctypes.implementation import Implementation
from ..ctypes.types import (
    Array, CType, Floating, FloatKind, Function, Integer, IntKind, Pointer,
    Qualifiers, QualType, StructRef, TagEnv, Member, UnionRef, VarArray,
    Void, NO_QUALS,
)
from ..errors import DesugarError, UnsupportedError
from ..source import Loc
from . import ast as A

class _NotConstantError(DesugarError):
    """An expression whose *form* is not a constant expression (§6.6)
    — as opposed to a constant expression with an erroneous value
    (division by zero, non-integer result).  Array declarators use the
    distinction: a well-formed but non-constant size declares a VLA."""


# The valid multisets of type-specifier keywords (§6.7.2p2), mapped to
# canonical types.
_KEYWORD_TYPES: Dict[Tuple[str, ...], CType] = {}


def _kw(spelling: str, ty: CType) -> None:
    key = tuple(sorted(spelling.split()))
    _KEYWORD_TYPES[key] = ty


_kw("void", Void())
_kw("char", Integer(IntKind.CHAR))
_kw("signed char", Integer(IntKind.SCHAR))
_kw("unsigned char", Integer(IntKind.UCHAR))
_kw("short", Integer(IntKind.SHORT))
_kw("signed short", Integer(IntKind.SHORT))
_kw("short int", Integer(IntKind.SHORT))
_kw("signed short int", Integer(IntKind.SHORT))
_kw("unsigned short", Integer(IntKind.USHORT))
_kw("unsigned short int", Integer(IntKind.USHORT))
_kw("int", Integer(IntKind.INT))
_kw("signed", Integer(IntKind.INT))
_kw("signed int", Integer(IntKind.INT))
_kw("unsigned", Integer(IntKind.UINT))
_kw("unsigned int", Integer(IntKind.UINT))
_kw("long", Integer(IntKind.LONG))
_kw("signed long", Integer(IntKind.LONG))
_kw("long int", Integer(IntKind.LONG))
_kw("signed long int", Integer(IntKind.LONG))
_kw("unsigned long", Integer(IntKind.ULONG))
_kw("unsigned long int", Integer(IntKind.ULONG))
_kw("long long", Integer(IntKind.LLONG))
_kw("signed long long", Integer(IntKind.LLONG))
_kw("long long int", Integer(IntKind.LLONG))
_kw("signed long long int", Integer(IntKind.LLONG))
_kw("unsigned long long", Integer(IntKind.ULLONG))
_kw("unsigned long long int", Integer(IntKind.ULLONG))
_kw("_Bool", Integer(IntKind.BOOL))
_kw("float", Floating(FloatKind.FLOAT))
_kw("double", Floating(FloatKind.DOUBLE))
_kw("long double", Floating(FloatKind.LDOUBLE))


class _Scope:
    """One lexical scope of the ordinary namespace plus the tag
    namespace."""

    def __init__(self) -> None:
        # name -> ("object"|"function", Symbol, QualType)
        #       | ("typedef", QualType) | ("enumconst", int)
        self.ordinary: Dict[str, tuple] = {}
        self.tags: Dict[str, str] = {}


class Desugarer:
    def __init__(self, impl: Implementation):
        self.impl = impl
        self.tags = TagEnv()
        self.scopes: List[_Scope] = [_Scope()]
        self.program = A.Program(self.tags)
        self._string_cache: Dict[bytes, A.Symbol] = {}
        # per-function state
        self._labels: Dict[str, A.Symbol] = {}
        self._defined_labels: set = set()
        self._gotos: List[Tuple[str, Loc]] = []
        self._switch_stack: List[A.SSwitch] = []
        self._file_scope_objects: Dict[str, A.ObjectDef] = {}
        # Symbol -> declared type (for sizeof in constant expressions).
        self._sym_types: Dict[A.Symbol, QualType] = {}
        # Hidden VLA size declarations produced while winding
        # declarators: (size symbol, desugared size expression, loc).
        # Flushed into the statement stream by _declare_object; other
        # declarator contexts must reject or discard them.
        self._vla_pending: List[Tuple[A.Symbol, A.Expr, Loc]] = []

    # -- scope helpers --------------------------------------------------------

    def push(self) -> None:
        self.scopes.append(_Scope())

    def pop(self) -> None:
        self.scopes.pop()

    def lookup(self, name: str) -> Optional[tuple]:
        for scope in reversed(self.scopes):
            if name in scope.ordinary:
                return scope.ordinary[name]
        return None

    def lookup_tag(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope.tags:
                return scope.tags[name]
        return None

    def bind(self, name: str, entry: tuple) -> None:
        self.scopes[-1].ordinary[name] = entry
        if entry[0] in ("object", "function"):
            self._sym_types[entry[1]] = entry[2]

    @property
    def at_file_scope(self) -> bool:
        return len(self.scopes) == 1

    # -- entry point ------------------------------------------------------------

    def run(self, unit: C.TranslationUnit) -> A.Program:
        for decl in unit.decls:
            if isinstance(decl, C.StaticAssert):
                self._static_assert(decl)
            elif isinstance(decl, C.FunctionDef):
                self._function_def(decl)
            else:
                self._declaration(decl, file_scope=True)
        main = self.lookup("main")
        if main is not None and main[0] == "function":
            self.program.main = main[1]
        return self.program

    def _static_assert(self, sa: C.StaticAssert) -> None:
        value = self.const_expr(self.expr(sa.cond))
        if value == 0:
            msg = sa.message or "static assertion failed"
            raise DesugarError(f"_Static_assert: {msg}", sa.loc,
                               iso="6.7.10p2")

    # -- declarations -------------------------------------------------------------

    def _declaration(self, decl: C.Declaration,
                     file_scope: bool) -> List[A.SDecl]:
        base_qty, storage = self.base_type(decl.specs)
        out: List[A.SDecl] = []
        if not decl.declarators:
            return out
        is_typedef = "typedef" in storage
        for idecl in decl.declarators:
            name, qty = self.apply_declarator(base_qty, idecl.declarator)
            if name is None:
                raise DesugarError("declarator without identifier",
                                   idecl.loc, iso="6.7.6")
            if is_typedef:
                if idecl.init is not None:
                    raise DesugarError("typedef with initialiser", idecl.loc,
                                       iso="6.7p4")
                if isinstance(qty.ty, VarArray):
                    self._vla_pending.clear()
                    raise UnsupportedError(
                        "variably modified typedef (see ROADMAP.md "
                        "'Fragment gaps')", idecl.loc)
                self.bind(name, ("typedef", qty))
                continue
            if isinstance(qty.ty, Function):
                self._declare_function(name, qty, idecl.loc)
                continue
            out.extend(self._declare_object(name, qty, idecl, storage,
                                            file_scope))
        return out

    def _declare_function(self, name: str, qty: QualType, loc: Loc) -> None:
        existing = self.lookup(name)
        if existing is not None and existing[0] == "function":
            sym = existing[1]
            old = self.program.functions.get(sym)
            if old is not None and isinstance(old.qty.ty, Function) \
                    and old.qty.ty.no_proto:
                old.qty = qty  # a prototype refines an old-style decl
            return
        sym = A.Symbol.fresh(name)
        self.bind(name, ("function", sym, qty))
        assert isinstance(qty.ty, Function)
        self.program.functions[sym] = A.FunctionDef(
            sym, qty, [], None, loc, variadic=qty.ty.variadic)

    def _declare_object(self, name: str, qty: QualType,
                        idecl: C.InitDeclarator, storage: List[str],
                        file_scope: bool) -> List[A.SDecl]:
        pendings = list(self._vla_pending)
        self._vla_pending.clear()
        if isinstance(qty.ty, VarArray):
            if file_scope or "static" in storage or "extern" in storage:
                raise DesugarError(
                    f"variable length array '{name}' must have "
                    "automatic storage duration", idecl.loc,
                    iso="6.7.6.2p2")
            if idecl.init is not None:
                raise DesugarError(
                    f"variable length array '{name}' may not be "
                    "initialised", idecl.loc, iso="6.7.9p3")
            sym = A.Symbol.fresh(name)
            self.bind(name, ("object", sym, qty))
            out = [A.SDecl(psym, QualType(Integer(IntKind.LONG)),
                           A.InitScalar(size_expr, loc=loc), loc=loc)
                   for psym, size_expr, loc in pendings]
            out.append(A.SDecl(sym, qty, None, loc=idecl.loc))
            return out
        init: Optional[A.Init] = None
        if idecl.init is not None:
            qty = self._complete_from_init(qty, idecl.init)
            init = self.normalize_init(qty, idecl.init)
        if file_scope or "static" in storage:
            if file_scope and name in self._file_scope_objects:
                # Tentative definitions merge (§6.9.2).
                obj = self._file_scope_objects[name]
                if init is not None:
                    obj.init = init
                if isinstance(obj.qty.ty, Array) and obj.qty.ty.size is None:
                    obj.qty = qty
                return []
            sym = A.Symbol.fresh(name)
            self.bind(name, ("object", sym, qty))
            is_extern_decl = "extern" in storage and init is None
            if not is_extern_decl:
                obj = A.ObjectDef(sym, qty, init, "static", idecl.loc)
                self.program.objects.append(obj)
                if file_scope:
                    self._file_scope_objects[name] = obj
            return []
        sym = A.Symbol.fresh(name)
        self.bind(name, ("object", sym, qty))
        if isinstance(qty.ty, Array) and qty.ty.size is None:
            raise DesugarError(f"array '{name}' has incomplete type",
                               idecl.loc, iso="6.7p7")
        return [A.SDecl(sym, qty, init, loc=idecl.loc)]

    def _complete_from_init(self, qty: QualType,
                            init: C.Initializer) -> QualType:
        """`int a[] = {...}` — complete the array size from the init."""
        ty = qty.ty
        if not (isinstance(ty, Array) and ty.size is None):
            return qty
        if isinstance(init, C.InitExpr) and \
                isinstance(init.expr, C.EStringLit):
            return QualType(Array(ty.of, len(init.expr.value) + 1),
                            qty.quals)
        if isinstance(init, C.InitList):
            if (len(init.items) == 1 and not init.items[0][0]
                    and isinstance(init.items[0][1], C.InitExpr)
                    and isinstance(init.items[0][1].expr, C.EStringLit)):
                return QualType(
                    Array(ty.of, len(init.items[0][1].expr.value) + 1),
                    qty.quals)
            # Highest index mentioned (designators included).
            idx = -1
            highest = -1
            for designators, _ in init.items:
                if designators and isinstance(designators[0],
                                              C.DesignIndex):
                    idx = self.const_expr(self.expr(designators[0].index))
                else:
                    idx += 1
                highest = max(highest, idx)
            return QualType(Array(ty.of, highest + 1), qty.quals)
        raise DesugarError("cannot complete array type from initialiser",
                           init.loc, iso="6.7.9")

    # -- types ---------------------------------------------------------------------

    def base_type(self, specs: C.DeclSpecs) -> Tuple[QualType, List[str]]:
        """Interpret declaration specifiers: canonical base type plus the
        storage-class list."""
        quals = Qualifiers(
            const="const" in specs.qualifiers,
            volatile="volatile" in specs.qualifiers,
            restrict="restrict" in specs.qualifiers,
            atomic="_Atomic" in specs.qualifiers,
        )
        keywords: List[str] = []
        other: List[C.TypeSpec] = []
        for ts in specs.type_specs:
            if isinstance(ts, C.TSKeyword):
                keywords.append(ts.name)
            else:
                other.append(ts)
        if keywords and other:
            raise DesugarError("invalid type specifier combination",
                               specs.loc, iso="6.7.2p2")
        if len(other) > 1:
            raise DesugarError("multiple type specifiers", specs.loc,
                               iso="6.7.2p2")
        if other:
            ts = other[0]
            if isinstance(ts, C.TSTypedefName):
                entry = self.lookup(ts.name)
                if entry is None or entry[0] != "typedef":
                    raise DesugarError(f"unknown type name '{ts.name}'",
                                       ts.loc, iso="6.7.8")
                base = entry[1]
                return QualType(base.ty, base.quals | quals), specs.storage
            if isinstance(ts, C.TSStructOrUnion):
                return (QualType(self.struct_or_union(ts), quals),
                        specs.storage)
            if isinstance(ts, C.TSEnum):
                return QualType(self.enum(ts), quals), specs.storage
            if isinstance(ts, C.TSAtomic):
                inner = self.type_name(ts.type_name)
                return (QualType(inner.ty,
                                 inner.quals | quals
                                 | Qualifiers(atomic=True)),
                        specs.storage)
            raise DesugarError("unhandled type specifier", specs.loc)
        if not keywords:
            # C89 implicit int is not C11; reject.
            raise DesugarError("declaration with no type specifier",
                               specs.loc, iso="6.7.2p2")
        if "_Complex" in keywords or "_Imaginary" in keywords:
            raise UnsupportedError("complex types are not supported",
                                   specs.loc)
        key = tuple(sorted(keywords))
        ty = _KEYWORD_TYPES.get(key)
        if ty is None:
            raise DesugarError(
                f"invalid type specifier combination: {' '.join(keywords)}",
                specs.loc, iso="6.7.2p2")
        return QualType(ty, quals), specs.storage

    def struct_or_union(self, ts: C.TSStructOrUnion) -> CType:
        ref_cls = UnionRef if ts.is_union else StructRef
        if ts.members is None:
            assert ts.tag is not None
            tag_id = self.lookup_tag(ts.tag)
            if tag_id is None:
                tag_id = self.tags.fresh_tag(ts.tag, ts.is_union)
                self.scopes[-1].tags[ts.tag] = tag_id
            defn = self.tags.require(tag_id)
            if defn.is_union != ts.is_union:
                raise DesugarError(
                    f"tag '{ts.tag}' used as both struct and union", ts.loc,
                    iso="6.7.2.3p3")
            return ref_cls(tag_id)
        # A definition: declare the tag in the current scope first so
        # self-referential pointers resolve (§6.7.2.3p8).
        if ts.tag is not None and ts.tag in self.scopes[-1].tags:
            tag_id = self.scopes[-1].tags[ts.tag]
            if self.tags.require(tag_id).complete:
                raise DesugarError(f"redefinition of tag '{ts.tag}'", ts.loc,
                                   iso="6.7.2.3p1")
        else:
            tag_id = self.tags.fresh_tag(ts.tag, ts.is_union)
            if ts.tag is not None:
                self.scopes[-1].tags[ts.tag] = tag_id
        members: List[Member] = []
        seen = set()
        for sdecl in ts.members:
            base_qty, storage = self.base_type(sdecl.specs)
            if storage:
                raise DesugarError("storage class in struct member",
                                   sdecl.loc, iso="6.7.2.1p1")
            if not sdecl.declarators:
                # Anonymous struct/union member (§6.7.2.1p13),
                # implemented by splicing the inner members into the
                # outer list.  Splicing loses the sub-object boundary,
                # which is fine for ordinary members (the offsets
                # coincide) but NOT for bit-fields: the inner record's
                # own allocation units and tail padding would be
                # merged into the outer packing, diverging from the
                # SysV layout — keep that corner a named gap.
                if isinstance(base_qty.ty, (StructRef, UnionRef)):
                    inner = self.tags.require(base_qty.ty.tag)
                    if any(m.bit_width is not None
                           for m in inner.members):
                        raise UnsupportedError(
                            "bit-field inside an anonymous "
                            "struct/union member (its allocation "
                            "units would merge into the enclosing "
                            "record's packing; see ROADMAP.md "
                            "'Fragment gaps')", sdecl.loc)
                    for m in inner.members:
                        members.append(m)
                    continue
                raise DesugarError("useless member declaration", sdecl.loc,
                                   iso="6.7.2.1p2")
            for declarator, width in sdecl.declarators:
                if width is not None:
                    members.append(self._bitfield_member(
                        base_qty, declarator, width, sdecl.loc, seen))
                    continue
                assert declarator is not None
                name, qty = self.apply_declarator(base_qty, declarator)
                if name is None:
                    raise DesugarError("unnamed struct member", sdecl.loc,
                                       iso="6.7.2.1")
                if name in seen:
                    raise DesugarError(f"duplicate member '{name}'",
                                       sdecl.loc, iso="6.7.2.1")
                seen.add(name)
                if isinstance(qty.ty, Function):
                    raise DesugarError("member with function type",
                                       sdecl.loc, iso="6.7.2.1p3")
                if isinstance(qty.ty, VarArray):
                    raise DesugarError(
                        "member with variably modified type",
                        sdecl.loc, iso="6.7.2.1p9")
                members.append(Member(name, qty))
        self.tags.define(tag_id, members)
        return ref_cls(tag_id)

    def _bitfield_member(self, base_qty: QualType,
                         declarator: Optional[C.Declarator],
                         width: C.Expr, loc: Loc, seen: set) -> Member:
        """A bit-field member declaration ``T name : width`` /
        ``T : width`` (§6.7.2.1p4-5, p11-12)."""
        name: Optional[str] = None
        qty = base_qty
        if declarator is not None:
            name, qty = self.apply_declarator(base_qty, declarator)
        if not isinstance(qty.ty, Integer):
            raise DesugarError(
                f"bit-field has non-integer type {qty.ty}", loc,
                iso="6.7.2.1p5")
        w = self.const_expr(self.expr(width))
        if w < 0:
            raise DesugarError("negative bit-field width", loc,
                               iso="6.7.2.1p4")
        max_w = self.impl.width(qty.ty.kind)
        if w > max_w:
            raise DesugarError(
                f"bit-field width {w} exceeds the width of its type "
                f"({qty.ty}: {max_w} bits)", loc, iso="6.7.2.1p4")
        if w == 0 and name is not None:
            raise DesugarError(
                f"named bit-field '{name}' has zero width", loc,
                iso="6.7.2.1p3")
        if name is not None:
            if name in seen:
                raise DesugarError(f"duplicate member '{name}'", loc,
                                   iso="6.7.2.1")
            seen.add(name)
        return Member(name, qty, bit_width=w)

    def enum(self, ts: C.TSEnum) -> CType:
        if ts.enumerators is None:
            # A reference; enums desugar to int (§6.7.2.2p4 — the paper's
            # Ail replaces enums by integers).
            return Integer(IntKind.INT)
        value = 0
        for name, expr in ts.enumerators:
            if expr is not None:
                value = self.const_expr(self.expr(expr))
            if not convert.is_representable(value, Integer(IntKind.INT),
                                            self.impl):
                raise DesugarError(
                    f"enumerator '{name}' value not representable in int",
                    ts.loc, iso="6.7.2.2p2")
            self.bind(name, ("enumconst", value))
            value += 1
        return Integer(IntKind.INT)

    def apply_declarator(self, base: QualType,
                         decl: C.Declarator) -> Tuple[Optional[str],
                                                      QualType]:
        """Wind a declarator chain around the base type (§6.7.6)."""
        if isinstance(decl, C.DIdent):
            return decl.name, base
        if isinstance(decl, C.DPointer):
            if isinstance(base.ty, VarArray):
                raise UnsupportedError(
                    "pointer to variable length array (runtime element "
                    "strides are outside the fragment; see ROADMAP.md "
                    "'Fragment gaps')", decl.loc)
            quals = Qualifiers(
                const="const" in decl.qualifiers,
                volatile="volatile" in decl.qualifiers,
                restrict="restrict" in decl.qualifiers,
                atomic="_Atomic" in decl.qualifiers,
            )
            return self.apply_declarator(
                QualType(Pointer(base), quals), decl.inner)
        if isinstance(decl, C.DArray):
            if decl.is_star:
                raise UnsupportedError(
                    "'[*]' (VLA of unspecified size) is only meaningful "
                    "in function prototypes and is outside the fragment "
                    "(see ROADMAP.md 'Fragment gaps')", decl.loc)
            if isinstance(base.ty, VarArray):
                raise UnsupportedError(
                    "array of variable length arrays (only the "
                    "outermost dimension may be variable; see "
                    "ROADMAP.md 'Fragment gaps')", decl.loc)
            size: Optional[int] = None
            if decl.size is not None:
                size_expr = self.expr(decl.size)
                try:
                    size = self.const_expr(size_expr)
                except _NotConstantError:
                    # A well-formed size expression whose form is not
                    # an integer constant expression declares a VLA
                    # (§6.7.6.2p4): introduce the hidden size variable
                    # the elaboration will load.  Erroneous *constant*
                    # sizes (division by zero, a float size) keep
                    # their specific DesugarError.
                    sym = A.Symbol.fresh("vla.size")
                    self._vla_pending.append((sym, size_expr, decl.loc))
                    self._sym_types[sym] = QualType(
                        Integer(IntKind.LONG))
                    return self.apply_declarator(
                        QualType(VarArray(base, sym), NO_QUALS),
                        decl.inner)
                if size < 0:
                    raise DesugarError("array size is negative", decl.loc,
                                       iso="6.7.6.2p1")
            elem = base
            return self.apply_declarator(
                QualType(Array(elem, size), NO_QUALS), decl.inner)
        if isinstance(decl, C.DFunction):
            if decl.ident_list:
                raise UnsupportedError(
                    "K&R-style function definitions are not supported",
                    decl.loc)
            if isinstance(base.ty, VarArray):
                raise DesugarError("function returning an array",
                                   decl.loc, iso="6.7.6.3p1")
            params: List[QualType] = []
            no_proto = False
            if decl.ident_list is not None and not decl.params:
                no_proto = True  # `()` — unspecified parameters
            pending_mark = len(self._vla_pending)
            for p in decl.params:
                pqty, pstorage = self.base_type(p.specs)
                if p.declarator is not None:
                    _, pqty = self.apply_declarator(pqty, p.declarator)
                params.append(self.adjust_param(pqty))
            # VLA parameters decay to pointers (§6.7.6.3p7); their size
            # expressions are not evaluated at runtime — drop the
            # hidden declarations created while winding them.
            del self._vla_pending[pending_mark:]
            if len(params) == 1 and isinstance(params[0].ty, Void) \
                    and params[0].quals.is_empty():
                params = []
            fn = Function(base, tuple(params), decl.variadic, no_proto)
            return self.apply_declarator(QualType(fn), decl.inner)
        raise DesugarError("unhandled declarator form", decl.loc)

    @staticmethod
    def adjust_param(qty: QualType) -> QualType:
        """§6.7.6.3p7-8: array parameters decay to pointers, function
        parameters to function pointers."""
        if isinstance(qty.ty, (Array, VarArray)):
            return QualType(Pointer(qty.ty.of), qty.quals)
        if isinstance(qty.ty, Function):
            return QualType(Pointer(QualType(qty.ty)))
        return qty

    def type_name(self, tn: C.TypeName) -> QualType:
        pending_mark = len(self._vla_pending)
        base, storage = self.base_type(tn.specs)
        if storage:
            raise DesugarError("storage class in type name", tn.loc,
                               iso="6.7.7")
        if tn.declarator is None:
            return base
        name, qty = self.apply_declarator(base, tn.declarator)
        if len(self._vla_pending) > pending_mark:
            # A VLA type in a cast / sizeof(type) / offsetof / compound
            # literal: the size expression would need a statement
            # context to evaluate into.
            del self._vla_pending[pending_mark:]
            raise UnsupportedError(
                "variably modified type in a type name (sizeof/cast/"
                "compound literal of a VLA type; see ROADMAP.md "
                "'Fragment gaps')", tn.loc)
        if name is not None:
            raise DesugarError("type name with identifier", tn.loc,
                               iso="6.7.7")
        return qty

    # -- initialisers ----------------------------------------------------------------

    def normalize_init(self, qty: QualType, init: C.Initializer) -> A.Init:
        ty = qty.ty
        if isinstance(init, C.InitExpr):
            if isinstance(ty, Array):
                if isinstance(init.expr, C.EStringLit) and \
                        _is_char_array(ty):
                    assert ty.size is not None
                    return A.InitString(init.expr.value, ty.size,
                                        loc=init.loc)
                raise DesugarError("array initialised from expression",
                                   init.loc, iso="6.7.9p14")
            return A.InitScalar(self.expr(init.expr), loc=init.loc)
        assert isinstance(init, C.InitList)
        if isinstance(ty, Array) and _is_char_array(ty) and \
                len(init.items) == 1 and not init.items[0][0] and \
                isinstance(init.items[0][1], C.InitExpr) and \
                isinstance(init.items[0][1].expr, C.EStringLit):
            assert ty.size is not None
            return A.InitString(init.items[0][1].expr.value, ty.size,
                                loc=init.loc)
        if isinstance(ty, (Integer, Floating, Pointer)):
            # Scalar in braces (§6.7.9p11).
            if len(init.items) != 1 or init.items[0][0]:
                raise DesugarError("bad scalar initialiser", init.loc,
                                   iso="6.7.9p11")
            return self.normalize_init(qty, init.items[0][1])
        stream = _InitStream(init.items)
        result = self._fill_aggregate(qty, stream, top=True)
        if not stream.done():
            raise DesugarError("excess elements in initialiser", init.loc,
                               iso="6.7.9p2")
        return result

    def _fill_aggregate(self, qty: QualType, stream: "_InitStream",
                        top: bool) -> A.Init:
        ty = qty.ty
        if isinstance(ty, Array):
            return self._fill_array(qty, stream)
        if isinstance(ty, StructRef):
            return self._fill_struct(qty, stream)
        if isinstance(ty, UnionRef):
            return self._fill_union(qty, stream)
        item = stream.next_item()
        if item is None:
            raise DesugarError("missing initialiser", Loc.unknown(),
                               iso="6.7.9")
        designators, sub = item
        if designators:
            raise DesugarError("designator on scalar", sub.loc,
                               iso="6.7.9p7")
        return self.normalize_init(qty, sub)

    def _fill_array(self, qty: QualType, stream: "_InitStream") -> A.Init:
        ty = qty.ty
        assert isinstance(ty, Array) and ty.size is not None
        elems: List[Tuple[int, A.Init]] = []
        idx = 0
        while not stream.done():
            item = stream.peek_item()
            assert item is not None
            designators, sub = item
            if designators:
                d0 = designators[0]
                if not isinstance(d0, C.DesignIndex):
                    break  # a member designator: belongs to our parent
                idx = self.const_expr(self.expr(d0.index))
                if idx < 0 or idx >= ty.size:
                    raise DesugarError("array designator out of range",
                                       d0.loc, iso="6.7.9p33")
                stream.consume()
                rest = designators[1:]
                elems.append((idx, self._fill_designated(
                    ty.of, rest, sub)))
                idx += 1
                continue
            if idx >= ty.size:
                break
            stream.consume()
            if isinstance(sub, C.InitList):
                elems.append((idx, self.normalize_init(ty.of, sub)))
            elif _is_aggregate(ty.of.ty):
                # Brace elision: the expression initialises the first
                # scalar of the nested aggregate; re-feed it (§6.7.9p20).
                stream.push_back(([], sub))
                elems.append((idx, self._fill_aggregate(ty.of, stream,
                                                        top=False)))
            else:
                elems.append((idx, self.normalize_init(ty.of, sub)))
            idx += 1
        return A.InitArray(elems, ty.size)

    def _fill_struct(self, qty: QualType, stream: "_InitStream") -> A.Init:
        ty = qty.ty
        assert isinstance(ty, StructRef)
        defn = self.tags.require(ty.tag)
        if not defn.complete:
            raise DesugarError(f"initialising incomplete type {ty}",
                               Loc.unknown(), iso="6.7.9p3")
        members: List[Tuple[str, A.Init]] = []
        mi = 0
        while not stream.done():
            item = stream.peek_item()
            assert item is not None
            designators, sub = item
            if designators:
                d0 = designators[0]
                if not isinstance(d0, C.DesignMember):
                    break
                names = [m.name for m in defn.members]
                if d0.name not in names:
                    break  # belongs to an enclosing aggregate
                mi = names.index(d0.name)
                stream.consume()
                members.append((d0.name, self._fill_designated(
                    defn.members[mi].qty, designators[1:], sub)))
                mi += 1
                continue
            # Unnamed bit-field members do not take part in positional
            # initialisation (§6.7.9p9).
            while mi < len(defn.members) and \
                    defn.members[mi].name is None:
                mi += 1
            if mi >= len(defn.members):
                break
            member = defn.members[mi]
            stream.consume()
            if isinstance(sub, C.InitList):
                members.append((member.name,
                                self.normalize_init(member.qty, sub)))
            elif isinstance(sub, C.InitExpr) and \
                    isinstance(sub.expr, C.EStringLit) and \
                    isinstance(member.qty.ty, Array) and \
                    _is_char_array(member.qty.ty):
                members.append((member.name,
                                self.normalize_init(member.qty, sub)))
            elif _is_aggregate(member.qty.ty):
                stream.push_back(([], sub))
                members.append((member.name, self._fill_aggregate(
                    member.qty, stream, top=False)))
            else:
                members.append((member.name,
                                self.normalize_init(member.qty, sub)))
            mi += 1
        return A.InitStruct(members)

    def _fill_union(self, qty: QualType, stream: "_InitStream") -> A.Init:
        ty = qty.ty
        assert isinstance(ty, UnionRef)
        defn = self.tags.require(ty.tag)
        item = stream.peek_item()
        if item is None:
            raise DesugarError("empty union initialiser", Loc.unknown(),
                               iso="6.7.9")
        designators, sub = item
        if designators and isinstance(designators[0], C.DesignMember):
            d0 = designators[0]
            member = defn.member(d0.name)
            if member is None:
                raise DesugarError(f"no union member '{d0.name}'", d0.loc,
                                   iso="6.7.9p7")
            stream.consume()
            return A.InitUnion(d0.name, self._fill_designated(
                member.qty, designators[1:], sub))
        if not defn.members:
            raise DesugarError("initialising empty union", Loc.unknown())
        member = defn.members[0]
        stream.consume()
        if isinstance(sub, C.InitList):
            return A.InitUnion(member.name,
                               self.normalize_init(member.qty, sub))
        if _is_aggregate(member.qty.ty):
            stream.push_back(([], sub))
            return A.InitUnion(member.name, self._fill_aggregate(
                member.qty, stream, top=False))
        return A.InitUnion(member.name,
                           self.normalize_init(member.qty, sub))

    def _fill_designated(self, qty: QualType,
                         rest: List[C.Designator],
                         sub: C.Initializer) -> A.Init:
        """Apply remaining designators `.a[3].b = init` recursively."""
        if not rest:
            if isinstance(sub, C.InitList):
                return self.normalize_init(qty, sub)
            if _is_aggregate(qty.ty) and isinstance(sub, C.InitExpr) and \
                    not isinstance(sub.expr, C.EStringLit):
                stream = _InitStream([([], sub)])
                return self._fill_aggregate(qty, stream, top=False)
            return self.normalize_init(qty, sub)
        d0, drest = rest[0], rest[1:]
        if isinstance(d0, C.DesignIndex):
            if not isinstance(qty.ty, Array):
                raise DesugarError("index designator on non-array", d0.loc,
                                   iso="6.7.9p6")
            idx = self.const_expr(self.expr(d0.index))
            inner = self._fill_designated(qty.ty.of, drest, sub)
            assert qty.ty.size is not None
            return A.InitArray([(idx, inner)], qty.ty.size)
        assert isinstance(d0, C.DesignMember)
        if isinstance(qty.ty, StructRef):
            defn = self.tags.require(qty.ty.tag)
            member = defn.member(d0.name)
            if member is None:
                raise DesugarError(f"no member '{d0.name}'", d0.loc,
                                   iso="6.7.9p7")
            return A.InitStruct([(d0.name, self._fill_designated(
                member.qty, drest, sub))])
        if isinstance(qty.ty, UnionRef):
            defn = self.tags.require(qty.ty.tag)
            member = defn.member(d0.name)
            if member is None:
                raise DesugarError(f"no member '{d0.name}'", d0.loc,
                                   iso="6.7.9p7")
            return A.InitUnion(d0.name, self._fill_designated(
                member.qty, drest, sub))
        raise DesugarError("member designator on non-record", d0.loc,
                           iso="6.7.9p7")

    # -- functions ----------------------------------------------------------------

    def _function_def(self, fdef: C.FunctionDef) -> None:
        base_qty, storage = self.base_type(fdef.specs)
        name, qty = self.apply_declarator(base_qty, fdef.declarator)
        if name is None or not isinstance(qty.ty, Function):
            raise DesugarError("bad function definition",
                               fdef.loc, iso="6.9.1")
        existing = self.lookup(name)
        if existing is not None and existing[0] == "function":
            sym = existing[1]
        else:
            sym = A.Symbol.fresh(name)
        self.bind(name, ("function", sym, qty))
        # Parameter scope.
        self.push()
        param_syms: List[A.Symbol] = []
        params = _declarator_params(fdef.declarator)
        fty = qty.ty
        if not fty.params:
            params = []  # (void) or () — no named parameters
        for i, p in enumerate(params):
            pname = None
            if p.declarator is not None:
                pname, _ = self.apply_declarator(
                    QualType(Void()), p.declarator)
            if pname is None:
                raise DesugarError("unnamed parameter in definition",
                                   fdef.loc, iso="6.9.1p5")
            psym = A.Symbol.fresh(pname)
            self.bind(pname, ("object", psym, fty.params[i]))
            param_syms.append(psym)
        self._labels = {}
        self._defined_labels = set()
        self._gotos = []
        body = self.block(fdef.body)
        for label, loc in self._gotos:
            if label not in self._defined_labels:
                raise DesugarError(f"goto undefined label '{label}'", loc,
                                   iso="6.8.6.1p1")
        self.pop()
        self.program.functions[sym] = A.FunctionDef(
            sym, qty, param_syms, body, fdef.loc, variadic=fty.variadic)

    # -- statements ------------------------------------------------------------------

    def block(self, block: C.SCompound) -> A.SBlock:
        self.push()
        items: List[Union[A.SDecl, A.Stmt]] = []
        for item in block.items:
            if isinstance(item, C.StaticAssert):
                self._static_assert(item)
            elif isinstance(item, C.Declaration):
                items.extend(self._declaration(item, file_scope=False))
            else:
                items.append(self.stmt(item))
        self.pop()
        return A.SBlock(items, loc=block.loc)

    def stmt(self, s: C.Stmt) -> A.Stmt:
        if isinstance(s, C.SCompound):
            return self.block(s)
        if isinstance(s, C.SExpr):
            return A.SExpr(self.expr(s.expr) if s.expr else None, loc=s.loc)
        if isinstance(s, C.SIf):
            return A.SIf(self.expr(s.cond), self.stmt(s.then),
                         self.stmt(s.els) if s.els else None, loc=s.loc)
        if isinstance(s, C.SWhile):
            return A.SWhile(self.expr(s.cond), self.stmt(s.body),
                            loc=s.loc)
        if isinstance(s, C.SDoWhile):
            w = A.SWhile(self.expr(s.cond), self.stmt(s.body), loc=s.loc)
            w.loc_hint = "do"
            return w
        if isinstance(s, C.SFor):
            return self._for(s)
        if isinstance(s, C.SSwitch):
            return self._switch(s)
        if isinstance(s, C.SCase):
            if not self._switch_stack:
                raise DesugarError("case outside switch", s.loc,
                                   iso="6.8.4.2p2")
            value = self.const_expr(self.expr(s.expr))
            sym = A.Symbol.fresh(f"case_{value}")
            sw = self._switch_stack[-1]
            if any(v == value for v, _ in sw.cases):
                raise DesugarError(f"duplicate case value {value}", s.loc,
                                   iso="6.8.4.2p3")
            sw.cases.append((value, sym))
            return A.SBlock([A.SCaseMarker(sym, loc=s.loc),
                             self.stmt(s.body)], loc=s.loc)
        if isinstance(s, C.SDefault):
            if not self._switch_stack:
                raise DesugarError("default outside switch", s.loc,
                                   iso="6.8.4.2p2")
            sw = self._switch_stack[-1]
            if sw.default is not None:
                raise DesugarError("duplicate default label", s.loc,
                                   iso="6.8.4.2p3")
            sym = A.Symbol.fresh("default")
            sw.default = sym
            return A.SBlock([A.SCaseMarker(sym, loc=s.loc),
                             self.stmt(s.body)], loc=s.loc)
        if isinstance(s, C.SLabeled):
            if s.label in self._defined_labels:
                raise DesugarError(f"duplicate label '{s.label}'", s.loc,
                                   iso="6.8.1p3")
            sym = self._labels.setdefault(s.label, A.Symbol.fresh(s.label))
            self._defined_labels.add(s.label)
            return A.SLabel(sym, self.stmt(s.body), loc=s.loc)
        if isinstance(s, C.SGoto):
            self._gotos.append((s.label, s.loc))
            sym = self._labels.setdefault(s.label, A.Symbol.fresh(s.label))
            return A.SGoto(sym, loc=s.loc)
        if isinstance(s, C.SBreak):
            return A.SBreak(loc=s.loc)
        if isinstance(s, C.SContinue):
            return A.SContinue(loc=s.loc)
        if isinstance(s, C.SReturn):
            return A.SReturn(self.expr(s.expr) if s.expr else None,
                             loc=s.loc)
        raise DesugarError(f"unhandled statement {type(s).__name__}", s.loc)

    def _for(self, s: C.SFor) -> A.Stmt:
        self.push()
        items: List[Union[A.SDecl, A.Stmt]] = []
        if isinstance(s.init, C.Declaration):
            items.extend(self._declaration(s.init, file_scope=False))
        elif s.init is not None:
            items.append(A.SExpr(self.expr(s.init), loc=s.loc))
        cond = self.expr(s.cond) if s.cond is not None \
            else A.EConstInt(1, loc=s.loc)
        body = self.stmt(s.body)
        loop = A.SWhile(cond, body, loc=s.loc)
        loop.loc_hint = "for"
        # Attach the step: elaboration runs it after the body and at
        # `continue` (§6.8.5.3p1).
        loop.step = self.expr(s.step) if s.step is not None else None
        items.append(loop)
        self.pop()
        return A.SBlock(items, loc=s.loc)

    def _switch(self, s: C.SSwitch) -> A.Stmt:
        sw = A.SSwitch(self.expr(s.cond), A.SBlock([]), loc=s.loc)
        self._switch_stack.append(sw)
        sw.body = self.stmt(s.body)
        self._switch_stack.pop()
        return sw

    # -- expressions ---------------------------------------------------------------

    def expr(self, e: C.Expr) -> A.Expr:
        if isinstance(e, C.EParen):
            return self.expr(e.inner)
        if isinstance(e, C.EIdent):
            entry = self.lookup(e.name)
            if entry is None:
                raise DesugarError(f"use of undeclared identifier "
                                   f"'{e.name}'", e.loc, iso="6.5.1p2")
            if entry[0] == "enumconst":
                return A.EConstInt(entry[1], loc=e.loc)
            if entry[0] in ("object", "function"):
                return A.EId(entry[1], loc=e.loc)
            raise DesugarError(f"'{e.name}' is a type name, not a value",
                               e.loc, iso="6.5.1")
        if isinstance(e, C.EIntConst):
            return A.EConstInt(e.value, e.base, e.suffix, loc=e.loc)
        if isinstance(e, C.EFloatConst):
            return A.EConstFloat(e.value, e.suffix, loc=e.loc)
        if isinstance(e, C.ECharConst):
            return A.EConstInt(e.value, loc=e.loc)
        if isinstance(e, C.EStringLit):
            return self._string_literal(e)
        if isinstance(e, C.EIndex):
            return A.EIndex(self.expr(e.base), self.expr(e.index),
                            loc=e.loc)
        if isinstance(e, C.ECall):
            return A.ECall(self.expr(e.func),
                           [self.expr(a) for a in e.args], loc=e.loc)
        if isinstance(e, C.EMember):
            return A.EMember(self.expr(e.base), e.member, e.arrow,
                             loc=e.loc)
        if isinstance(e, C.EPostIncr):
            return A.EIncrDecr(e.op, True, self.expr(e.base), loc=e.loc)
        if isinstance(e, C.EPreIncr):
            return A.EIncrDecr(e.op, False, self.expr(e.base), loc=e.loc)
        if isinstance(e, C.EUnary):
            return A.EUnary(e.op, self.expr(e.operand), loc=e.loc)
        if isinstance(e, C.ESizeofExpr):
            # sizeof(expr): type computed by the type checker; keep the
            # operand unevaluated per §6.5.3.4p2.
            return A.EUnary("sizeof", self.expr(e.operand), loc=e.loc)
        if isinstance(e, C.ESizeofType):
            return A.ESizeofType(self.type_name(e.type_name), loc=e.loc)
        if isinstance(e, C.EAlignofType):
            return A.EAlignofType(self.type_name(e.type_name), loc=e.loc)
        if isinstance(e, C.ECast):
            return A.ECast(self.type_name(e.type_name),
                           self.expr(e.operand), loc=e.loc)
        if isinstance(e, C.EBinary):
            return A.EBinary(e.op, self.expr(e.lhs), self.expr(e.rhs),
                             loc=e.loc)
        if isinstance(e, C.EConditional):
            if e.then is None:
                raise UnsupportedError("GNU a ?: b extension", e.loc)
            return A.ECond(self.expr(e.cond), self.expr(e.then),
                           self.expr(e.els), loc=e.loc)
        if isinstance(e, C.EAssign):
            return A.EAssign(e.op, self.expr(e.lhs), self.expr(e.rhs),
                             loc=e.loc)
        if isinstance(e, C.EComma):
            return A.EComma(self.expr(e.lhs), self.expr(e.rhs), loc=e.loc)
        if isinstance(e, C.EOffsetof):
            return A.EOffsetof(self.type_name(e.type_name), e.member,
                               loc=e.loc)
        if isinstance(e, C.ECompoundLiteral):
            qty = self.type_name(e.type_name)
            qty = self._complete_from_init(qty, e.init)
            init = self.normalize_init(qty, e.init)
            sym = A.Symbol.fresh("compound_literal")
            return A.ECompound(sym, qty, init, loc=e.loc)
        if isinstance(e, C.EGeneric):
            raise UnsupportedError(
                "generic selection is out of the supported fragment "
                "(paper §1)", e.loc)
        raise DesugarError(f"unhandled expression {type(e).__name__}",
                           e.loc)

    def _string_literal(self, e: C.EStringLit) -> A.Expr:
        if e.wide:
            raise UnsupportedError("wide string literals", e.loc)
        sym = self._string_cache.get(e.value)
        if sym is None:
            sym = A.Symbol.fresh("string_literal")
            self._string_cache[e.value] = sym
            char = Integer(IntKind.CHAR)
            qty = QualType(Array(QualType(char), len(e.value) + 1))
            self.program.objects.append(A.ObjectDef(
                sym, qty, A.InitString(e.value, len(e.value) + 1),
                "static", e.loc))
        return A.EString(sym, e.value, loc=e.loc)

    # -- constant expressions --------------------------------------------------------

    def const_expr(self, e: A.Expr) -> int:
        """Integer constant expressions (§6.6)."""
        value = self._const(e)
        if not isinstance(value, int):
            raise DesugarError("expression is not an integer constant",
                               e.loc, iso="6.6p6")
        return value

    def _const(self, e: A.Expr) -> Union[int, float]:
        if isinstance(e, A.EConstInt):
            return e.value
        if isinstance(e, A.EConstFloat):
            return e.value
        if isinstance(e, A.EUnary) and e.op == "sizeof":
            # sizeof(expr) in a constant expression: supported for
            # expressions whose type is directly known to the scoper.
            qty = self._type_of_simple(e.operand)
            if qty is None:
                raise DesugarError(
                    "sizeof of this expression form is not supported "
                    "in constant expressions", e.loc, iso="6.6")
            if isinstance(qty.ty, VarArray):
                # sizeof of a VLA is a runtime value (§6.5.3.4p2); in
                # an array-size position this declares another VLA.
                raise _NotConstantError(
                    "sizeof of a variable length array is not a "
                    "constant expression", e.loc, iso="6.6")
            return self.impl.sizeof(qty.ty, self.tags)
        if isinstance(e, A.EUnary):
            v = self._const(e.operand)
            if e.op == "-":
                return -v
            if e.op == "+":
                return v
            if e.op == "~":
                return ~int(v)
            if e.op == "!":
                return int(not v)
            raise _NotConstantError(f"'{e.op}' in constant expression",
                                    e.loc, iso="6.6")
        if isinstance(e, A.EBinary):
            a = self._const(e.lhs)
            if e.op == "&&":
                return int(bool(a) and bool(self._const(e.rhs)))
            if e.op == "||":
                return int(bool(a) or bool(self._const(e.rhs)))
            b = self._const(e.rhs)
            try:
                return _const_binop(e.op, a, b)
            except ZeroDivisionError:
                raise DesugarError("division by zero in constant "
                                   "expression", e.loc, iso="6.6") from None
        if isinstance(e, A.ECond):
            return self._const(e.then) if self._const(e.cond) \
                else self._const(e.els)
        if isinstance(e, A.ECast):
            v = self._const(e.operand)
            if isinstance(e.to.ty, Integer):
                converted, _ = convert.convert_integer_value(
                    int(v), e.to.ty, self.impl)
                return converted
            if isinstance(e.to.ty, Floating):
                return float(v)
            raise DesugarError("non-arithmetic cast in constant expression",
                               e.loc, iso="6.6")
        if isinstance(e, A.ESizeofType):
            return self.impl.sizeof(_decayed(e.of).ty, self.tags)
        if isinstance(e, A.EAlignofType):
            return self.impl.alignof(e.of.ty, self.tags)
        if isinstance(e, A.EOffsetof):
            return self.impl.offsetof(e.record.ty, e.member, self.tags)
        raise _NotConstantError(
            f"{type(e).__name__} is not permitted in a constant expression",
            e.loc, iso="6.6")

    def _type_of_simple(self, e: A.Expr) -> Optional[QualType]:
        """Best-effort type synthesis for sizeof in constant
        expressions (identifiers, dereferences, indexing, members)."""
        if isinstance(e, A.EId):
            qty = self._sym_types.get(e.sym)
            return qty
        if isinstance(e, A.EString):
            char = Integer(IntKind.CHAR)
            return QualType(Array(QualType(char), len(e.value) + 1))
        if isinstance(e, A.EUnary) and e.op == "*":
            inner = self._type_of_simple(e.operand)
            if inner is not None and isinstance(inner.ty, Pointer):
                return inner.ty.to
            return None
        if isinstance(e, A.EIndex):
            base = self._type_of_simple(e.base)
            if base is None:
                return None
            if isinstance(base.ty, (Array, VarArray)):
                return base.ty.of
            if isinstance(base.ty, Pointer):
                return base.ty.to
            return None
        if isinstance(e, A.EMember):
            base = self._type_of_simple(e.base)
            if base is None:
                return None
            ty = base.ty
            if e.arrow and isinstance(ty, Pointer):
                ty = ty.to.ty
            if isinstance(ty, (StructRef, UnionRef)):
                member = self.tags.require(ty.tag).member(e.member)
                return member.qty if member else None
            return None
        return None


class _InitStream:
    """A cursor over initialiser items supporting push-back, for brace
    elision (§6.7.9p20)."""

    def __init__(self, items: List[Tuple[List[C.Designator],
                                         C.Initializer]]):
        self.items = list(items)
        self.pos = 0

    def done(self) -> bool:
        return self.pos >= len(self.items)

    def peek_item(self):
        if self.done():
            return None
        return self.items[self.pos]

    def next_item(self):
        item = self.peek_item()
        if item is not None:
            self.pos += 1
        return item

    def consume(self) -> None:
        self.pos += 1

    def push_back(self, item) -> None:
        self.items.insert(self.pos, item)


def _const_binop(op: str, a, b):
    if op in ("/", "%") and b == 0:
        raise ZeroDivisionError
    if op == "/":
        if isinstance(a, float) or isinstance(b, float):
            return a / b
        q = abs(a) // abs(b)
        return q if (a < 0) == (b < 0) else -q
    if op == "%":
        q = _const_binop("/", a, b)
        return a - b * q
    table = {
        "*": lambda: a * b, "+": lambda: a + b, "-": lambda: a - b,
        "<<": lambda: int(a) << int(b), ">>": lambda: int(a) >> int(b),
        "<": lambda: int(a < b), ">": lambda: int(a > b),
        "<=": lambda: int(a <= b), ">=": lambda: int(a >= b),
        "==": lambda: int(a == b), "!=": lambda: int(a != b),
        "&": lambda: int(a) & int(b), "^": lambda: int(a) ^ int(b),
        "|": lambda: int(a) | int(b),
    }
    return table[op]()


def _is_char_array(ty: Array) -> bool:
    of = ty.of.ty
    return isinstance(of, Integer) and of.kind in (
        IntKind.CHAR, IntKind.SCHAR, IntKind.UCHAR)


def _is_aggregate(ty: CType) -> bool:
    return isinstance(ty, (Array, StructRef, UnionRef))


def _decayed(qty: QualType) -> QualType:
    if isinstance(qty.ty, Array):
        return qty  # sizeof(array) is the array size, no decay
    return qty


def _declarator_params(decl: C.Declarator) -> List[C.ParamDecl]:
    d = decl
    while not isinstance(d, C.DIdent):
        if isinstance(d, C.DFunction):
            return d.params
        d = d.inner  # type: ignore[attr-defined]
    return []


def desugar(unit: C.TranslationUnit, impl: Implementation) -> A.Program:
    """Desugar a Cabs translation unit into an Ail program."""
    return Desugarer(impl).run(unit)
