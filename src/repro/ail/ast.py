"""Ail — the desugared C AST.

Compared with Cabs (paper §5.1), Ail has:

* identifier scoping resolved — every name is a unique :class:`Symbol`
  (linkage merging done; object/function/typedef/enum namespaces split);
* syntactic C types normalised into the canonical `repro.ctypes` forms;
* enums replaced by their integer types, enumerators by constants;
* ``for`` and ``do``-``while`` loops desugared into ``while``;
* string literals replaced by references to implicitly-allocated objects;
* initialisers normalised against the declared type.

Expression nodes carry a ``ty`` annotation slot which the type checker
(:mod:`repro.typing.typecheck`) fills to make *Typed Ail*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..ctypes.types import QualType, TagEnv
from ..source import Loc

_sym_counter = itertools.count(1)


@dataclass(frozen=True)
class Symbol:
    """A resolved identifier: source name plus a globally unique id."""

    name: str
    uid: int

    @staticmethod
    def fresh(name: str) -> "Symbol":
        return Symbol(name, next(_sym_counter))

    def __str__(self) -> str:
        return f"{self.name}_{self.uid}"


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)
    # Filled by the type checker: the expression's C type and whether the
    # node denotes an lvalue (§6.3.2.1).
    ty: Optional[QualType] = field(default=None, kw_only=True)
    is_lvalue: bool = field(default=False, kw_only=True)


@dataclass
class EId(Expr):
    sym: Symbol


@dataclass
class EConstInt(Expr):
    """An integer constant; ``base`` and ``suffix`` drive its C type
    (§6.4.4.1p5)."""

    value: int
    base: int = 10
    suffix: str = ""


@dataclass
class EConstFloat(Expr):
    value: float
    suffix: str = ""


@dataclass
class EString(Expr):
    """A string literal, referring to its implicitly allocated object."""

    sym: Symbol
    value: bytes


@dataclass
class ECall(Expr):
    func: Expr
    args: List[Expr]


@dataclass
class EMember(Expr):
    base: Expr
    member: str
    arrow: bool


@dataclass
class EUnary(Expr):
    op: str              # & * + - ~ !
    operand: Expr


@dataclass
class EBinary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class EIndex(Expr):
    base: Expr
    index: Expr


@dataclass
class ECast(Expr):
    to: QualType
    operand: Expr


@dataclass
class EAssign(Expr):
    op: str              # = or compound (*=, ...)
    lhs: Expr
    rhs: Expr


@dataclass
class ECond(Expr):
    cond: Expr
    then: Expr
    els: Expr


@dataclass
class EComma(Expr):
    lhs: Expr
    rhs: Expr


@dataclass
class EIncrDecr(Expr):
    op: str              # "++" / "--"
    is_postfix: bool
    base: Expr


@dataclass
class ESizeofType(Expr):
    of: QualType


@dataclass
class EAlignofType(Expr):
    of: QualType


@dataclass
class EOffsetof(Expr):
    record: QualType
    member: str


@dataclass
class ECompound(Expr):
    """A compound literal: an unnamed object with the given init."""

    sym: Symbol
    of: QualType
    init: "Init"


@dataclass
class EAtomicLoad(Expr):
    """Marker used by the restricted concurrency fragment."""

    operand: Expr
    order: str = "seq_cst"


# An implicit-conversion wrapper inserted by the type checker (lvalue
# conversion, array/function decay, arithmetic conversions, ...).
@dataclass
class EConv(Expr):
    kind: str            # "lvalue", "decay", "fn-decay", "arith", "assign"
    to: QualType
    operand: Expr


# --------------------------------------------------------------------------
# Initialisers (normalised against the declared type)
# --------------------------------------------------------------------------

@dataclass
class Init:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class InitScalar(Init):
    expr: Expr


@dataclass
class InitArray(Init):
    # Element inits by index; missing indices are zero-initialised.
    elems: List[Tuple[int, Init]]
    size: int


@dataclass
class InitStruct(Init):
    # Member inits by name (in member order); missing ones zeroed.
    members: List[Tuple[str, Init]]


@dataclass
class InitUnion(Init):
    member: str
    init: Init


@dataclass
class InitString(Init):
    """char array initialised from a string literal."""

    value: bytes
    size: int


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    loc: Loc = field(default_factory=Loc.unknown, kw_only=True)


@dataclass
class SBlock(Stmt):
    items: List[Union["SDecl", Stmt]] = field(default_factory=list)


@dataclass
class SDecl(Stmt):
    """A block-scope object declaration (one declarator)."""

    sym: Symbol
    qty: QualType
    init: Optional[Init]
    is_static: bool = False


@dataclass
class SExpr(Stmt):
    expr: Optional[Expr]


@dataclass
class SIf(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt]


@dataclass
class SWhile(Stmt):
    """The unified loop form: ``for`` and ``do``-``while`` desugar into
    this (paper §5.1 — "desugaring for- and do-while loops into while").

    * ``loc_hint == "do"``: the body runs before the first condition test.
    * ``step``: the for-loop step expression, run after the body and at
      every ``continue``.
    """

    cond: Expr
    body: Stmt
    step: Optional[Expr] = None
    loc_hint: str = "while"


@dataclass
class SSwitch(Stmt):
    cond: Expr
    body: Stmt
    # Precomputed case labels (paper §5.1): (value, label-symbol) plus
    # optional default label. Filled by the desugarer.
    cases: List[Tuple[int, Symbol]] = field(default_factory=list)
    default: Optional[Symbol] = None
    break_sym: Optional[Symbol] = None


@dataclass
class SCaseMarker(Stmt):
    """Marks where a case/default label sits inside a switch body."""

    sym: Symbol


@dataclass
class SLabel(Stmt):
    sym: Symbol
    body: Stmt


@dataclass
class SGoto(Stmt):
    sym: Symbol


@dataclass
class SBreak(Stmt):
    pass


@dataclass
class SContinue(Stmt):
    pass


@dataclass
class SReturn(Stmt):
    expr: Optional[Expr]


@dataclass
class SPar(Stmt):
    """cppmem-style thread creation {{{ e1 ||| e2 }}} — only produced by
    the concurrency test helpers, not by C desugaring."""

    branches: List[Stmt]


# --------------------------------------------------------------------------
# Declarations and programs
# --------------------------------------------------------------------------

@dataclass
class ObjectDef:
    """A file-scope object (or string-literal / compound-literal object)."""

    sym: Symbol
    qty: QualType
    init: Optional[Init]
    storage: str = "static"          # "static" | "extern-def"
    loc: Loc = field(default_factory=Loc.unknown)


@dataclass
class FunctionDef:
    sym: Symbol
    qty: QualType                     # a Function type
    param_syms: List[Symbol]
    body: Optional[SBlock]            # None for declarations
    loc: Loc = field(default_factory=Loc.unknown)
    variadic: bool = False


@dataclass
class Program:
    tags: TagEnv
    objects: List[ObjectDef] = field(default_factory=list)
    functions: Dict[Symbol, FunctionDef] = field(default_factory=dict)
    main: Optional[Symbol] = None

    def function_named(self, name: str) -> Optional[FunctionDef]:
        for sym, fdef in self.functions.items():
            if sym.name == name:
                return fdef
        return None
