"""Ail: the desugared, scoped, type-normalised C AST (paper §5.1)."""

from . import ast
from .desugar import Desugarer, desugar

__all__ = ["ast", "Desugarer", "desugar"]
