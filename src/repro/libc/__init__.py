"""The mini C standard library, implemented against the memory object
model (paper: "It supports only small parts of the standard libraries").
"""

from .builtins import NATIVE_PROCS

__all__ = ["NATIVE_PROCS"]
