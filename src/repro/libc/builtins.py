"""Native implementations of the supported standard-library functions.

Each native is a generator ``native(evaluator, args, loc)`` that yields
driver requests (actions / raw byte services / stdout) and returns the
call's Core value. They operate *through the memory object model* — e.g.
``memcpy`` copies abstract bytes, so per-byte provenance flows exactly as
the candidate de facto model prescribes for pointer copying (§2.3).
"""

from __future__ import annotations

from typing import List

from ..ctypes.types import Integer, IntKind
from ..memory.values import AByte, IntegerValue, PointerValue
from ..dynamics.values import (
    UNIT, Value, VInteger, VPointer, VSpecified, VUnspecified,
)
from ..dynamics.evaluator import ProgramExit
from ..errors import InternalError
from .printf import format_string, string_argument_specs

_INT = Integer(IntKind.INT)


def _int(v: Value, loc) -> int:
    if isinstance(v, VSpecified):
        return _int(v.value, loc)
    if isinstance(v, VInteger):
        return v.ival.value
    if isinstance(v, VUnspecified):
        raise InternalError("unspecified integer argument to libc", loc)
    raise InternalError(f"expected integer argument, got {v!r}", loc)


def _ptr(v: Value, loc) -> PointerValue:
    if isinstance(v, VSpecified):
        return _ptr(v.value, loc)
    if isinstance(v, VPointer):
        return v.ptr
    if isinstance(v, VInteger) and v.ival.value == 0:
        from ..memory.values import NULL_POINTER
        return NULL_POINTER
    raise InternalError(f"expected pointer argument, got {v!r}", loc)


def _ret_int(n: int) -> Value:
    return VSpecified(VInteger(IntegerValue(n)))


def _ret_ptr(p: PointerValue) -> Value:
    return VSpecified(VPointer(p))


# ---- stdio ------------------------------------------------------------------

def _do_printf(evaluator, args, loc, out_sink):
    fmt_ptr = _ptr(args[0], loc)
    fmt = yield ("raw", "cstring", (fmt_ptr,), loc)
    if fmt is None:
        raise InternalError("printf format string is unspecified", loc)
    strings = {}
    # Pre-fetch the C strings of the arguments %s conversions actually
    # consume (they need driver requests).  Only those: reading through
    # every pointer argument would trip the memory model's checks on
    # valid non-%s pointers — e.g. %p of a one-past-the-end pointer.
    # An explicit precision bounds the read (§7.21.6.1p8: the array
    # need not be null-terminated then).
    rest = list(args[1:])
    # One fetch per distinct pointer, under the *weakest* constraint
    # any of its %s conversions imposes: an unbounded conversion needs
    # the terminator anyway; otherwise the largest precision suffices
    # and each conversion truncates its own view.
    bounds = {}
    for i, bound in string_argument_specs(fmt):
        if i >= len(rest):
            continue
        if isinstance(bound, tuple):  # ("arg", k): dynamic .* value
            k = bound[1]
            bound = None
            if k < len(rest):
                prec = rest[k].value if isinstance(rest[k], VSpecified) \
                    else rest[k]
                if isinstance(prec, VInteger) and prec.ival.value >= 0:
                    bound = prec.ival.value
        inner = rest[i].value if isinstance(rest[i], VSpecified) \
            else rest[i]
        if isinstance(inner, VPointer) and inner.ptr.addr != 0:
            if inner.ptr in bounds and (bounds[inner.ptr] is None
                                        or bound is None):
                bounds[inner.ptr] = None
            else:
                bounds[inner.ptr] = bound if inner.ptr not in bounds \
                    else max(bounds[inner.ptr], bound)
    for ptr, bound in bounds.items():
        strings[ptr] = yield ("raw", "cstring", (ptr, bound), loc)
    text, _ = format_string(fmt, rest,
                            lambda p: strings.get(p),
                            impl=evaluator.impl, loc=loc)
    yield from out_sink(text)
    return text


def native_printf(evaluator, args, loc):
    chunks = []

    def sink(text):
        chunks.append(text)
        yield ("stdout", text)

    text = yield from _do_printf(evaluator, args, loc, sink)
    return _ret_int(len(text))


def native_puts(evaluator, args, loc):
    ptr = _ptr(args[0], loc)
    data = yield ("raw", "cstring", (ptr,), loc)
    text = ("<unspec>" if data is None else data.decode("latin-1")) + "\n"
    yield ("stdout", text)
    return _ret_int(len(text))


def native_putchar(evaluator, args, loc):
    c = _int(args[0], loc)
    yield ("stdout", chr(c & 0xFF))
    return _ret_int(c)


def native_sprintf(evaluator, args, loc):
    buf = _ptr(args[0], loc)
    text = yield from _do_printf(evaluator, list(args[1:]), loc,
                                 lambda t: iter(()))
    data = [AByte(b) for b in text.encode("latin-1")] + [AByte(0)]
    yield ("raw", "store_bytes", (buf, data), loc)
    return _ret_int(len(text))


def native_snprintf(evaluator, args, loc):
    buf = _ptr(args[0], loc)
    n = _int(args[1], loc)
    text = yield from _do_printf(evaluator, [args[2]] + list(args[3:]),
                                 loc, lambda t: iter(()))
    encoded = text.encode("latin-1")
    if n > 0:
        clipped = encoded[:n - 1]
        data = [AByte(b) for b in clipped] + [AByte(0)]
        yield ("raw", "store_bytes", (buf, data), loc)
    return _ret_int(len(encoded))


# ---- stdlib -----------------------------------------------------------------

def native_malloc(evaluator, args, loc):
    size = _int(args[0], loc)
    value, _record = yield ("action", "alloc",
                            [VInteger(IntegerValue(16)),
                             VInteger(IntegerValue(size))],
                            "pos", "na", loc)
    return VSpecified(value)


def native_calloc(evaluator, args, loc):
    n = _int(args[0], loc)
    size = _int(args[1], loc)
    total = n * size
    value, _record = yield ("action", "alloc",
                            [VInteger(IntegerValue(16)),
                             VInteger(IntegerValue(total))],
                            "pos", "na", loc)
    assert isinstance(value, VPointer)
    yield ("raw", "store_bytes", (value.ptr, [AByte(0)] * total), loc)
    return VSpecified(value)


def native_free(evaluator, args, loc):
    ptr = _ptr(args[0], loc)
    from ..dynamics.values import VBool
    yield ("action", "kill", [VPointer(ptr), VBool(True)], "pos", "na",
           loc)
    return UNIT


def native_realloc(evaluator, args, loc):
    ptr = _ptr(args[0], loc)
    size = _int(args[1], loc)
    from ..dynamics.values import VBool
    new_value, _ = yield ("action", "alloc",
                          [VInteger(IntegerValue(16)),
                           VInteger(IntegerValue(size))], "pos", "na",
                          loc)
    assert isinstance(new_value, VPointer)
    if ptr.addr != 0:
        alloc = yield ("raw", "allocation_of", (ptr,), loc)
        if alloc is not None:
            n = min(alloc.size, size)
            data = yield ("raw", "load_bytes", (ptr, n), loc)
            yield ("raw", "store_bytes", (new_value.ptr, data), loc)
        yield ("action", "kill", [VPointer(ptr), VBool(True)], "pos",
               "na", loc)
    return VSpecified(new_value)


def native_abort(evaluator, args, loc):
    raise ProgramExit(134, aborted=True)
    yield  # pragma: no cover


def native_exit(evaluator, args, loc):
    raise ProgramExit(_int(args[0], loc))
    yield  # pragma: no cover


def native_abs(evaluator, args, loc):
    return _ret_int(abs(_int(args[0], loc)))
    yield  # pragma: no cover


def native_atoi(evaluator, args, loc):
    ptr = _ptr(args[0], loc)
    data = yield ("raw", "cstring", (ptr,), loc)
    text = (data or b"").decode("latin-1").strip()
    sign = 1
    if text[:1] in ("-", "+"):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    for ch in text:
        if not ch.isdigit():
            break
        digits += ch
    return _ret_int(sign * int(digits) if digits else 0)


def native_strtol(evaluator, args, loc):
    # Only the (nptr, NULL, 10) form is supported.
    value = yield from native_atoi(evaluator, args[:1], loc)
    return value


def native_rand(evaluator, args, loc):
    state = getattr(evaluator, "_rand_state", 1)
    state = (state * 1103515245 + 12345) & 0x7FFFFFFF
    evaluator._rand_state = state
    return _ret_int(state)
    yield  # pragma: no cover


def native_srand(evaluator, args, loc):
    evaluator._rand_state = _int(args[0], loc) or 1
    return UNIT
    yield  # pragma: no cover


def native_assert_fail(evaluator, args, loc):
    expr_ptr = _ptr(args[0], loc)
    data = yield ("raw", "cstring", (expr_ptr,), loc)
    text = (data or b"?").decode("latin-1")
    yield ("stdout", f"Assertion failed: {text}\n")
    raise ProgramExit(134, aborted=True)


# ---- string.h ----------------------------------------------------------------

def native_memcpy(evaluator, args, loc):
    dest = _ptr(args[0], loc)
    src = _ptr(args[1], loc)
    n = _int(args[2], loc)
    if n:
        data = yield ("raw", "load_bytes", (src, n), loc)
        yield ("raw", "store_bytes", (dest, data), loc)
    return _ret_ptr(dest)


native_memmove = native_memcpy


def native_memset(evaluator, args, loc):
    dest = _ptr(args[0], loc)
    c = _int(args[1], loc) & 0xFF
    n = _int(args[2], loc)
    if n:
        yield ("raw", "store_bytes", (dest, [AByte(c)] * n), loc)
    return _ret_ptr(dest)


def native_memcmp(evaluator, args, loc):
    a = _ptr(args[0], loc)
    b = _ptr(args[1], loc)
    n = _int(args[2], loc)
    da = yield ("raw", "load_bytes", (a, n), loc)
    db = yield ("raw", "load_bytes", (b, n), loc)
    for xa, xb in zip(da, db):
        va = xa.value if xa.value is not None else 0
        vb = xb.value if xb.value is not None else 0
        if va != vb:
            return _ret_int(1 if va > vb else -1)
    return _ret_int(0)


def native_strlen(evaluator, args, loc):
    ptr = _ptr(args[0], loc)
    data = yield ("raw", "cstring", (ptr,), loc)
    return _ret_int(len(data or b""))


def native_strcmp(evaluator, args, loc):
    a = yield ("raw", "cstring", (_ptr(args[0], loc),), loc)
    b = yield ("raw", "cstring", (_ptr(args[1], loc),), loc)
    a = a or b""
    b = b or b""
    if a == b:
        return _ret_int(0)
    return _ret_int(-1 if a < b else 1)


def native_strncmp(evaluator, args, loc):
    n = _int(args[2], loc)
    a = yield ("raw", "cstring", (_ptr(args[0], loc),), loc)
    b = yield ("raw", "cstring", (_ptr(args[1], loc),), loc)
    a = (a or b"")[:n]
    b = (b or b"")[:n]
    if a == b:
        return _ret_int(0)
    return _ret_int(-1 if a < b else 1)


def native_strcpy(evaluator, args, loc):
    dest = _ptr(args[0], loc)
    data = yield ("raw", "cstring", (_ptr(args[1], loc),), loc)
    payload = [AByte(b) for b in (data or b"")] + [AByte(0)]
    yield ("raw", "store_bytes", (dest, payload), loc)
    return _ret_ptr(dest)


def native_strncpy(evaluator, args, loc):
    dest = _ptr(args[0], loc)
    n = _int(args[2], loc)
    data = yield ("raw", "cstring", (_ptr(args[1], loc),), loc)
    body = list((data or b"")[:n])
    payload = [AByte(b) for b in body] + [AByte(0)] * (n - len(body))
    if payload:
        yield ("raw", "store_bytes", (dest, payload), loc)
    return _ret_ptr(dest)


def native_strcat(evaluator, args, loc):
    dest = _ptr(args[0], loc)
    old = yield ("raw", "cstring", (dest,), loc)
    add = yield ("raw", "cstring", (_ptr(args[1], loc),), loc)
    start = dest.with_addr(dest.addr + len(old or b""))
    payload = [AByte(b) for b in (add or b"")] + [AByte(0)]
    yield ("raw", "store_bytes", (start, payload), loc)
    return _ret_ptr(dest)


def native_strchr(evaluator, args, loc):
    ptr = _ptr(args[0], loc)
    c = _int(args[1], loc) & 0xFF
    data = yield ("raw", "cstring", (ptr,), loc)
    data = data or b""
    if c == 0:
        return _ret_ptr(ptr.with_addr(ptr.addr + len(data)))
    idx = data.find(bytes([c]))
    if idx < 0:
        from ..memory.values import NULL_POINTER
        return _ret_ptr(NULL_POINTER)
    return _ret_ptr(ptr.with_addr(ptr.addr + idx))


# ---- threads.h ---------------------------------------------------------------

def native_thrd_create(evaluator, args, loc):
    from ..ctypes.types import QualType
    thr_ptr = _ptr(args[0], loc)
    fn = args[1]
    arg = args[2]
    inner = fn.value if isinstance(fn, VSpecified) else fn
    name = evaluator._function_name(inner, loc)
    gen = evaluator.call_proc(name, [arg], loc)
    tid = yield ("spawn", gen)
    from ..memory.values import MVInteger
    from ..dynamics.values import VCtype
    yield ("action", "store",
           [VCtype(_INT), VPointer(thr_ptr),
            VSpecified(VInteger(IntegerValue(tid)))], "pos", "na", loc)
    return _ret_int(0)


def native_thrd_join(evaluator, args, loc):
    tid = _int(args[0], loc)
    res_ptr = _ptr(args[1], loc)
    value = yield ("wait", tid)
    if res_ptr.addr != 0:
        from ..dynamics.values import VCtype
        if not isinstance(value, (VSpecified, VUnspecified)):
            value = VSpecified(value) if isinstance(value, VInteger) \
                else _ret_int(0)
        yield ("action", "store",
               [VCtype(_INT), VPointer(res_ptr), value], "pos", "na",
               loc)
    return _ret_int(0)


NATIVE_PROCS = {
    "printf": native_printf,
    "puts": native_puts,
    "putchar": native_putchar,
    "sprintf": native_sprintf,
    "snprintf": native_snprintf,
    "malloc": native_malloc,
    "calloc": native_calloc,
    "realloc": native_realloc,
    "free": native_free,
    "abort": native_abort,
    "exit": native_exit,
    "abs": native_abs,
    "labs": native_abs,
    "atoi": native_atoi,
    "atol": native_atoi,
    "strtol": native_strtol,
    "rand": native_rand,
    "srand": native_srand,
    "__cerberus_assert_fail": native_assert_fail,
    "memcpy": native_memcpy,
    "memmove": native_memmove,
    "memset": native_memset,
    "memcmp": native_memcmp,
    "strlen": native_strlen,
    "strcmp": native_strcmp,
    "strncmp": native_strncmp,
    "strcpy": native_strcpy,
    "strncpy": native_strncpy,
    "strcat": native_strcat,
    "strchr": native_strchr,
    "thrd_create": native_thrd_create,
    "thrd_join": native_thrd_join,
}
