"""printf-family formatting (ISO C11 §7.21.6.1 fragment).

Conversions supported: d i u o x X c s p f e g % with length modifiers
h hh l ll z t (parsed; values are mathematical integers already, so the
modifiers only matter for %n-style writes, which are unsupported).
Unspecified argument values print as ``<unspec>`` in liberal models —
the strict models flag the read long before it reaches printf (paper §3,
Q49).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dynamics.values import (
    Value, VFloating, VInteger, VPointer, VSpecified, VUnspecified,
)
from ..errors import InternalError

_INT_CONVS = "diuoxX"
_FLOAT_CONVS = "fFeEgG"


def _unwrap(v: Value) -> Value:
    return v.value if isinstance(v, VSpecified) else v


def format_string(fmt: bytes, args: List[Value],
                  fetch_string) -> Tuple[str, int]:
    """Render ``fmt`` with ``args``; ``fetch_string(ptr) -> bytes|None``
    resolves %s pointers. Returns (text, #args consumed)."""
    out: List[str] = []
    i = 0
    argi = 0
    text = fmt.decode("latin-1")
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i < n and text[i] == "%":
            out.append("%")
            i += 1
            continue
        spec_start = i
        # flags
        while i < n and text[i] in "-+ #0":
            i += 1
        # width
        while i < n and text[i].isdigit():
            i += 1
        # precision
        if i < n and text[i] == ".":
            i += 1
            while i < n and text[i].isdigit():
                i += 1
        # length modifiers
        while i < n and text[i] in "hlqjzt":
            i += 1
        if i >= n:
            out.append("%" + text[spec_start:])
            break
        conv = text[i]
        spec = "%" + _strip_length(text[spec_start:i]) + _py_conv(conv)
        i += 1
        arg: Optional[Value] = None
        if conv != "%":
            if argi >= len(args):
                out.append("<missing>")
                continue
            arg = _unwrap(args[argi])
            argi += 1
        if isinstance(arg, VUnspecified):
            out.append("<unspec>")
            continue
        if conv in _INT_CONVS:
            assert isinstance(arg, VInteger), f"%{conv} of {arg!r}"
            value = arg.ival.value
            if conv in "uoxX" and value < 0:
                value &= (1 << 64) - 1
            out.append(spec % value)
        elif conv in _FLOAT_CONVS:
            if isinstance(arg, VInteger):
                out.append(spec % float(arg.ival.value))
            else:
                assert isinstance(arg, VFloating)
                out.append(spec % arg.fval.value)
        elif conv == "c":
            assert isinstance(arg, VInteger)
            out.append(chr(arg.ival.value & 0xFF))
        elif conv == "s":
            assert isinstance(arg, VPointer), f"%s of {arg!r}"
            data = fetch_string(arg.ptr)
            out.append("<unspec>" if data is None
                       else data.decode("latin-1"))
        elif conv == "p":
            assert isinstance(arg, (VPointer, VInteger))
            addr = arg.ptr.addr if isinstance(arg, VPointer) \
                else arg.ival.value
            out.append(f"0x{addr:x}")
        else:
            raise InternalError(f"unsupported conversion %{conv}")
    return "".join(out), argi


def _strip_length(spec: str) -> str:
    return "".join(c for c in spec if c not in "hlqjzt")


def _py_conv(conv: str) -> str:
    if conv == "i":
        return "d"
    if conv in "uFG":
        return {"u": "d", "F": "f", "G": "g"}[conv]
    return conv
