"""printf-family formatting (ISO C11 §7.21.6.1 fragment).

Conversions supported: d i u o x X c s p f e g % with length modifiers
hh h l ll q j z t and ``*`` width/precision (which consume int
arguments, §7.21.6.1p5).

The length modifier determines the bit-width to which negative
arguments of the unsigned conversions (%u %o %x %X) are reduced:
``hh`` -> unsigned char, ``h`` -> unsigned short, none -> the active
:class:`Implementation`'s ``unsigned int``, ``l``/``z``/``t`` ->
``unsigned long``/``size_t``/``ptrdiff_t``, ``ll``/``q``/``j`` ->
``unsigned long long``. So ``printf("%u\\n", -1)`` prints 4294967295
under LP64 while ``%hu`` prints 65535 and ``%lx`` stays
ffffffffffffffff.

An argument whose type does not match its conversion specification is
undefined behaviour (§7.21.6.1p9), reported as
``Printf_argument_type_mismatch``. Unspecified argument values print as
``<unspec>`` in liberal models — the strict models flag the read long
before it reaches printf (paper §3, Q49).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ctypes.implementation import LP64
from ..ctypes.types import IntKind
from ..dynamics.values import (
    Value, VFloating, VInteger, VPointer, VSpecified, VUnspecified,
)
from ..errors import InternalError
from ..ub import PRINTF_ARGUMENT_TYPE_MISMATCH, UndefinedBehaviour

_INT_CONVS = "diuoxX"
_FLOAT_CONVS = "fFeEgG"

_LENGTH_KINDS = {
    "hh": IntKind.UCHAR, "h": IntKind.USHORT, "": IntKind.UINT,
    "l": IntKind.ULONG, "ll": IntKind.ULLONG, "q": IntKind.ULLONG,
    "j": IntKind.ULLONG, "z": IntKind.ULONG, "t": IntKind.ULONG,
}


def _unwrap(v: Value) -> Value:
    return v.value if isinstance(v, VSpecified) else v


def _conv_bits(length: str, impl) -> int:
    """The width (in bits) of the unsigned type named by a length
    modifier, under the active implementation environment (the
    mainstream LP64 assumption when none is supplied)."""
    if impl is None:
        impl = LP64
    # Unparseable modifier soup: widest wins.
    kind = _LENGTH_KINDS.get(length, IntKind.ULLONG)
    return impl.width(kind)


def _mismatch(conv: str, arg: Optional[Value], loc) -> None:
    raise UndefinedBehaviour(
        PRINTF_ARGUMENT_TYPE_MISMATCH, loc,
        f"%{conv} conversion applied to incompatible argument {arg!r}")


def string_argument_specs(fmt: bytes) -> List[Tuple[int, object]]:
    """``(argument index, precision bound)`` for each ``%s`` conversion
    in ``fmt``.  The printf builtin pre-fetches C strings only for
    these arguments: fetching through *every* pointer argument would
    trip the memory model's bounds checks for perfectly valid non-%s
    pointers (e.g. ``%p`` of a one-past-the-end pointer).

    The bound is ``None`` (no precision: the array must be
    null-terminated), an ``int`` (an explicit precision: at most that
    many bytes are read, §7.21.6.1p8 — the array need *not* be
    null-terminated), or ``("arg", k)`` for a ``.*`` precision whose
    value is the k-th argument."""
    out: List[Tuple[int, object]] = []
    text = fmt.decode("latin-1")
    i = 0
    argi = 0
    n = len(text)
    while i < n:
        if text[i] != "%":
            i += 1
            continue
        i += 1
        if i < n and text[i] == "%":
            i += 1
            continue
        while i < n and text[i] in "-+ #0":
            i += 1
        if i < n and text[i] == "*":
            argi += 1  # * width consumes an int argument
            i += 1
        else:
            while i < n and text[i].isdigit():
                i += 1
        bound: object = None
        if i < n and text[i] == ".":
            i += 1
            bound = 0
            if i < n and text[i] == "*":
                bound = ("arg", argi)
                argi += 1  # .* precision consumes an int argument
                i += 1
            else:
                while i < n and text[i].isdigit():
                    bound = bound * 10 + int(text[i])  # type: ignore
                    i += 1
        while i < n and text[i] in "hlqjzt":
            i += 1
        if i >= n:
            break
        conv = text[i]
        i += 1
        if conv == "%":
            continue
        if conv == "s":
            out.append((argi, bound))
        argi += 1
    return out


def format_string(fmt: bytes, args: List[Value], fetch_string,
                  impl=None, loc=None) -> Tuple[str, int]:
    """Render ``fmt`` with ``args``; ``fetch_string(ptr) -> bytes|None``
    resolves %s pointers. ``impl`` (an :class:`Implementation`) supplies
    the integer widths for the unsigned conversions; ``loc`` attributes
    diagnostics to the printf call site. Returns (text, #args consumed).
    """
    out: List[str] = []
    i = 0
    argi = 0
    text = fmt.decode("latin-1")
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i < n and text[i] == "%":
            out.append("%")
            i += 1
            continue
        spec_start = i
        flags = ""
        while i < n and text[i] in "-+ #0":
            flags += text[i]
            i += 1
        # width: digits or * (consumes an int argument below)
        width: Optional[int] = None
        width_star = False
        if i < n and text[i] == "*":
            width_star = True
            i += 1
        else:
            while i < n and text[i].isdigit():
                width = (width or 0) * 10 + int(text[i])
                i += 1
        # precision: .digits or .* (a bare "." means precision 0)
        prec: Optional[int] = None
        prec_star = False
        if i < n and text[i] == ".":
            i += 1
            prec = 0
            if i < n and text[i] == "*":
                prec_star = True
                i += 1
            else:
                while i < n and text[i].isdigit():
                    prec = prec * 10 + int(text[i])
                    i += 1
        length = ""
        while i < n and text[i] in "hlqjzt":
            length += text[i]
            i += 1
        if i >= n:
            out.append("%" + text[spec_start:])
            break
        conv = text[i]
        i += 1
        if conv == "%":        # e.g. "%5%" — render a literal %
            out.append("%")
            continue
        # * width/precision consume int arguments, in order, before the
        # converted value (§7.21.6.1p5).
        missing = False
        unspec = False
        for star, is_width in ((width_star, True), (prec_star, False)):
            if not star:
                continue
            if argi >= len(args):
                missing = True
                continue
            sarg = _unwrap(args[argi])
            argi += 1
            if isinstance(sarg, VUnspecified):
                unspec = True
                continue
            if not isinstance(sarg, VInteger):
                _mismatch("*", sarg, loc)
            sval = sarg.ival.value
            if is_width:
                # A negative * width counts as the - flag plus a
                # positive width.
                if sval < 0:
                    flags += "-"
                    sval = -sval
                width = sval
            else:
                # A negative * precision is taken as omitted.
                prec = sval if sval >= 0 else None
        if missing or argi >= len(args):
            out.append("<missing>")
            continue
        arg = _unwrap(args[argi])
        argi += 1
        if unspec or isinstance(arg, VUnspecified):
            out.append("<unspec>")
            continue
        spec = "%" + flags
        if width is not None:
            spec += str(width)
        if prec is not None:
            spec += "." + str(prec)
        spec += _py_conv(conv)
        if conv in _INT_CONVS:
            if not isinstance(arg, VInteger):
                _mismatch(conv, arg, loc)
            value = arg.ival.value
            if conv in "uoxX" and value < 0:
                value &= (1 << _conv_bits(length, impl)) - 1
            if prec == 0 and value == 0:
                # §7.21.6.1p8: zero with explicit zero precision
                # prints no digits (sign/# prefixes survive; the 0
                # flag is ignored when a precision is given).
                body = ""
                if conv in "di" and "+" in flags:
                    body = "+"
                elif conv in "di" and " " in flags:
                    body = " "
                elif conv == "o" and "#" in flags:
                    body = "0"
                pad = " " * ((width or 0) - len(body))
                out.append(body + pad if "-" in flags else pad + body)
                continue
            if conv == "o" and "#" in flags:
                # C's # for octal forces a leading zero digit; Python's
                # would produce "0o".
                digits = "%o" % value
                if not digits.startswith("0"):
                    prec = max(prec or 0, len(digits) + 1)
                spec = "%" + flags.replace("#", "")
                if width is not None:
                    spec += str(width)
                spec += f".{prec}o" if prec is not None else "o"
            out.append(spec % value)
        elif conv in _FLOAT_CONVS:
            if isinstance(arg, VInteger):
                out.append(spec % float(arg.ival.value))
            elif isinstance(arg, VFloating):
                out.append(spec % arg.fval.value)
            else:
                _mismatch(conv, arg, loc)
        elif conv == "c":
            if not isinstance(arg, VInteger):
                _mismatch(conv, arg, loc)
            out.append(spec % chr(arg.ival.value & 0xFF))
        elif conv == "s":
            if not isinstance(arg, VPointer):
                _mismatch(conv, arg, loc)
            data = fetch_string(arg.ptr)
            out.append("<unspec>" if data is None
                       else spec % data.decode("latin-1"))
        elif conv == "p":
            if not isinstance(arg, (VPointer, VInteger)):
                _mismatch(conv, arg, loc)
            addr = arg.ptr.addr if isinstance(arg, VPointer) \
                else arg.ival.value
            out.append(f"0x{addr:x}")
        else:
            raise InternalError(f"unsupported conversion %{conv}", loc)
    return "".join(out), argi


def _py_conv(conv: str) -> str:
    if conv == "i":
        return "d"
    if conv in "uFG":
        return {"u": "d", "F": "f", "G": "g"}[conv]
    return conv
