"""E9 — Fig. 2: coverage of the Core syntax.

Checks that every construct of the paper's Core grammar exists in our
Core AST (with the save/run re-establishment deviation and the EScope
addition documented in DESIGN.md), and that the elaboration of a
feature-rich program exercises the sequencing constructs.
"""

from repro.core import ast as K, pretty_program
from repro.pipeline import compile_c

FIG2_PURE = {
    "PSym": K.PSym, "PImpl": K.PImpl, "PVal": K.PVal,
    "PUndef": K.PUndef, "PError": K.PError, "PCtor": K.PCtor,
    "PCase": K.PCase, "PArrayShift": K.PArrayShift,
    "PMemberShift": K.PMemberShift, "PNot": K.PNot,
    "PBinop": K.PBinop, "PStruct": K.PStruct, "PUnion": K.PUnion,
    "PCall": K.PCall, "PLet": K.PLet, "PIf": K.PIf,
}
FIG2_EFFECT = {
    "EPure": K.EPure, "EPtrOp": K.EPtrOp, "EAction": K.EAction,
    "ECase": K.ECase, "ELet": K.ELet, "EIf": K.EIf, "ESkip": K.ESkip,
    "EProc": K.EProc, "ECcall": K.ECcall, "EReturn": K.EReturn,
    "EUnseq": K.EUnseq, "EWseq": K.EWseq, "ESseq": K.ESseq,
    "EAtomicSeq": K.EAtomicSeq, "EIndet": K.EIndet,
    "EBound": K.EBound, "ENd": K.ENd, "ESave": K.ESave,
    "ERun": K.ERun, "EPar": K.EPar, "EWait": K.EWait,
}
ACTIONS = ["create", "alloc", "kill", "store", "load", "rmw"]

RICH = r'''
#include <stdio.h>
struct s { int a; int b; };
int f(int x) { return x + 1; }
int main(void) {
    struct s v = { 1, 2 };
    int i = 0, w;
    while (i < 3) { i++; if (i == 2) continue; }
    w = i++ + f(v.a);
    switch (w) { case 4: v.b = 9; break; default: ; }
    printf("%d %d\n", w, v.b);
    return 0;
}
'''


def elaborate_and_render():
    pipe = compile_c(RICH)
    return pretty_program(pipe.core)


def test_e9_core_syntax(benchmark):
    text = benchmark(elaborate_and_render)
    # All Fig. 2 constructs exist as AST classes.
    for name, cls in {**FIG2_PURE, **FIG2_EFFECT}.items():
        assert isinstance(cls, type), name
    # The rich program exercises the key sequencing forms.
    for needle in ("unseq(", "let weak", "let strong", "let atomic",
                   "save", "run", "ccall(", "load(", "store(",
                   "member_shift", "case ", "Specified"):
        assert needle in text, needle
    print("\nFig. 2 Core constructs implemented: "
          f"{len(FIG2_PURE)} pure, {len(FIG2_EFFECT)} effectful, "
          f"{len(ACTIONS)} actions")
    print("sequencing forms exercised by the sample program: "
          "unseq / let weak / let strong / let atomic / save / run")
