"""Observability is zero-cost when disabled (repro.obs claim).

PR 6 established the gating pattern: decide *once* per coarse unit of
work whether anyone is listening and do nothing else when nobody is.
The telemetry spine (``repro.obs``) instruments the pipeline phases,
the driver run loop, the explorer, the stores, and the farm on that
same pattern — every site is one ``obs.active()`` global read that
bails on ``None``.

Three assertions pin the claim:

* **zero-call** — with observability off, a tripwire (every
  :class:`~repro.obs.ObsContext` method patched to raise) survives a
  full exploration untouched; installing a context makes the very
  same workload trip immediately, so the tripwire is genuine;
* **overhead** — the instrumented-but-disabled workload is within 5%
  of a baseline with the instrumentation wrappers surgically removed
  (min-of-rounds on both sides, same process, interleaved);
* **enabled cost** — the same workload under ``obs.collecting()``
  (metrics only) and ``obs.tracing(path)`` (metrics + JSON-lines
  trace) is timed and recorded — the price of turning telemetry on,
  for the record, in ``benchmarks/perf_obs_overhead.json``.
"""

import contextlib
import json
import time
from pathlib import Path

import repro.obs as obs
from repro.dynamics.driver import Driver
from repro.dynamics.explore import Explorer
from repro.obs import ObsContext
from repro.pipeline import compile_c

MODEL = "concrete"
MAX_PATHS = 200
ROUNDS = 7

# Unsequenced pairs: a real multi-path exploration, so the per-run
# obs wrapper (the only per-unit instrumentation the driver has) is
# exercised MAX_PATHS times per round.
SOURCE = r'''
int x, y;
int f(int v) { x = v; return v; }
int g(int v) { y = v; return v; }
int main(void) {
    int a = f(1) + g(2);
    int b = f(3) + g(4);
    return (a + b + x + y) & 1;
}
'''


def _workload(program):
    def make_driver(oracle):
        return Driver(program.core, program.make_model(MODEL), oracle)
    result = Explorer(make_driver, max_paths=MAX_PATHS,
                      entry="main").run()
    assert result.paths_run > 1, "workload must actually explore"
    return result


@contextlib.contextmanager
def _uninstrumented():
    """Remove the obs wrappers entirely: the true no-telemetry
    baseline the disabled mode is measured against."""
    driver_run, explorer_run = Driver.run, Explorer.run
    Driver.run = Driver._run
    Explorer.run = lambda self: self._run(None)
    try:
        yield
    finally:
        Driver.run, Explorer.run = driver_run, explorer_run


@contextlib.contextmanager
def _tripwire():
    """Every ObsContext method raises: proves disabled-mode sites
    never touch a context."""
    saved = {}

    def make_trip(name):
        def trip(self, *a, **k):
            raise AssertionError(
                f"ObsContext.{name} called while observability "
                "is disabled")
        return trip

    for name in ("inc", "gauge", "observe", "merge", "span"):
        saved[name] = getattr(ObsContext, name)
        setattr(ObsContext, name, make_trip(name))
    try:
        yield
    finally:
        for name, fn in saved.items():
            setattr(ObsContext, name, fn)


def _min_of_rounds(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_mode_is_zero_cost(tmp_path):
    program = compile_c(SOURCE)

    # Zero-call: the tripwire never fires with observability off...
    with _tripwire():
        _workload(program)

    # ...and the tripwire is genuine: the same workload under an
    # installed context trips on its first instrumented site.
    with _tripwire():
        try:
            with obs.collecting():
                _workload(program)
        except AssertionError as exc:
            assert "ObsContext" in str(exc)
        else:
            raise AssertionError(
                "tripwire never saw an instrumented call with "
                "observability on — the zero-call assertion is "
                "vacuous")

    # Overhead: instrumented-but-disabled vs wrappers removed.
    # Rounds interleave (disabled, baseline, disabled, ...) so drift
    # — cache warm-up, frequency scaling, GC — hits both sides alike;
    # min-of-rounds then discards the noisy rounds on each.
    _workload(program)
    with _uninstrumented():
        _workload(program)
    disabled_s = baseline_s = best_ratio = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        _workload(program)
        round_disabled = time.perf_counter() - t0
        with _uninstrumented():
            t0 = time.perf_counter()
            _workload(program)
            round_baseline = time.perf_counter() - t0
        disabled_s = min(disabled_s, round_disabled)
        baseline_s = min(baseline_s, round_baseline)
        # Noise only ever inflates a round, so the *smallest* paired
        # ratio is a sound upper bound on the true overhead — and far
        # more stable than a ratio of cross-round minima.
        best_ratio = min(best_ratio, round_disabled / round_baseline)
    overhead_pct = (best_ratio - 1.0) * 100.0

    # Enabled cost, for the record: metrics-only and full tracing.
    def collecting_run():
        with obs.collecting():
            _workload(program)
    collecting_s = _min_of_rounds(collecting_run)

    trace_path = tmp_path / "bench-obs.jsonl"

    def tracing_run():
        with obs.tracing(str(trace_path), identity="bench"):
            _workload(program)
    tracing_s = _min_of_rounds(tracing_run)

    record = {
        "benchmark": "obs_overhead",
        "model": MODEL,
        "paths_per_round": MAX_PATHS,
        "rounds": ROUNDS,
        "baseline_s": round(baseline_s, 4),
        "disabled_s": round(disabled_s, 4),
        "disabled_overhead_pct": round(overhead_pct, 2),
        "disabled_overhead_budget_pct": 5.0,
        "collecting_s": round(collecting_s, 4),
        "collecting_overhead_x": round(collecting_s / baseline_s, 2),
        "tracing_s": round(tracing_s, 4),
        "tracing_overhead_x": round(tracing_s / baseline_s, 2),
    }
    out_path = Path(__file__).with_name("perf_obs_overhead.json")
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + json.dumps(record))

    assert overhead_pct <= 5.0, (
        f"disabled-mode observability overhead {overhead_pct:.2f}% "
        f"exceeds the 5% budget (baseline {baseline_s:.4f}s, "
        f"disabled {disabled_s:.4f}s)")
