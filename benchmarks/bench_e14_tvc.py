"""E14 — §6: tvc, the translation validator for the front end.

Paper: tvc "supports only extremely simple single-function C programs
that perform no I/O, take no arguments", producing a proof that the
compiled IR's behaviours are a subset of Cerberus's. We validate a
batch of tvc-class programs (including UB ones, where refinement is
vacuous) and check that unsupported programs are rejected, as tvc
does.
"""

from repro.tvc import validate

TVC_CLASS = [
    "int main(void){ return 0; }",
    "int main(void){ int x = 3; int y = 4; return x*x + y*y; }",
    "int main(void){ int s = 0; int i = 1; "
    "while (i <= 10) { s = s + i; i = i + 1; } return s; }",
    "int main(void){ int a = 5; if (a > 3) { a = a - 1; } "
    "else { a = a + 1; } return a; }",
    "int main(void){ int a = 1; int b = 0; "
    "if (a == 1) { b = 10; } return b; }",
    "int main(void){ int x = 6; int y = x / 2; return y % 2; }",
    "int main(void){ int x = 2147483647; return x + 1; }",   # UB
    "int main(void){ int d = 0; return 5 / d; }",            # UB
    "int main(void){ int x = 1; return x << 35; }",          # UB
    "int main(void){ int n = 3; int r = 1; "
    "while (n > 0) { r = r * n; n = n - 1; } return r; }",
]

UNSUPPORTED = [
    '#include <stdio.h>\nint main(void){ printf("x"); return 0; }',
    "int f(void){ return 1; } int main(void){ return f(); }",
    "int main(void){ int x; int *p = &x; *p = 1; return x; }",
]


def validate_batch():
    return ([validate(src) for src in TVC_CLASS],
            [validate(src) for src in UNSUPPORTED])


def test_e14_tvc(benchmark):
    supported, unsupported = benchmark.pedantic(validate_batch,
                                                rounds=1, iterations=1)
    for r in supported:
        assert r.supported
        assert r.validated, (r.source, r.ir_result,
                             r.cerberus_behaviours)
    for r in unsupported:
        assert not r.supported
    validated = sum(1 for r in supported if r.validated)
    print(f"\ntvc: {validated}/{len(supported)} tvc-class programs "
          f"validated (IR behaviour ⊆ Cerberus behaviours); "
          f"{len(unsupported)} out-of-class programs rejected")
    for r in supported[:4]:
        print(f"  {r.ir_result:26s} ⊆ {r.cerberus_behaviours}")
