"""E3 — §2: "for 38 the ISO standard is unclear; for 28 the de facto
standards are unclear; for 26 there are significant differences"."""

from repro.survey.report import clarity_table
from repro.testsuite import clarity_split


def test_e3_clarity_split(benchmark):
    iso, defacto, diverges = benchmark(clarity_split)
    assert (iso, defacto, diverges) == (38, 28, 26)
    print("\n" + clarity_table())
