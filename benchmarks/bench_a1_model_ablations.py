"""A1 (ablation) — knocking out individual design choices of the
candidate de facto model (paper §5.9).

Each ablation disables one option the paper argues for and shows which
real-world idioms (suite tests) stop working — evidence that each
choice is load-bearing:

* no provenance through integers (Q5 off) -> the uintptr_t round trip
  and the tag-bit idiom keep working only by accident of wildcard
  provenance; with strict empty-provenance rejection they break;
* no transient out-of-bounds construction (Q31 off) -> `p = a + 7;
  p -= 5;` becomes UB at construction;
* relational comparison restricted to same-object (Q25 off) -> the
  global-lock-ordering idiom becomes UB;
* provenance checking off entirely -> the DR260 example silently
  corrupts the adjacent object (the concrete behaviour GCC's
  optimisation contradicts).
"""

from repro.memory.base import MemoryOptions
from repro.pipeline import run_c
from repro.testsuite import TESTS

BASE = dict(
    uninit_read="unspecified",
    check_provenance=True,
    reject_empty_provenance=False,
    allow_inter_object_relational=True,
    allow_inter_object_ptrdiff=False,
    allow_oob_construction=True,
    provenance_sensitive_equality=False,
    track_int_provenance=True,
    check_effective_types=False,
)


def _verdict(test_name: str, **overrides) -> str:
    opts = MemoryOptions(**{**BASE, **overrides})
    out = run_c(TESTS[test_name].source, model="provenance",
                options=opts)
    if out.status == "ub":
        return f"ub:{out.ub.name}"
    return "ok"


def run_ablations():
    return {
        "baseline int_cast_roundtrip":
            _verdict("int_cast_roundtrip"),
        "no-int-provenance int_cast_roundtrip":
            _verdict("int_cast_roundtrip",
                     track_int_provenance=False,
                     reject_empty_provenance=True),
        "baseline tag_bits":
            _verdict("tag_bits_roundtrip"),
        "no-int-provenance tag_bits":
            _verdict("tag_bits_roundtrip",
                     track_int_provenance=False,
                     reject_empty_provenance=True),
        "baseline oob_transient":
            _verdict("oob_transient"),
        "no-oob-construction oob_transient":
            _verdict("oob_transient", allow_oob_construction=False),
        "baseline relational":
            _verdict("relational_cross_object"),
        "no-cross-relational relational":
            _verdict("relational_cross_object",
                     allow_inter_object_relational=False),
        "baseline dr260":
            _verdict("provenance_basic_global_yx"),
        "no-provenance-check dr260":
            _verdict("provenance_basic_global_yx",
                     check_provenance=False),
    }


def test_a1_ablations(benchmark):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    # Q5: integer provenance is what makes the round trip usable.
    assert results["baseline int_cast_roundtrip"] == "ok"
    assert results["no-int-provenance int_cast_roundtrip"].startswith(
        "ub")
    assert results["baseline tag_bits"] == "ok"
    assert results["no-int-provenance tag_bits"].startswith("ub")
    # Q31: access-time (not construction-time) checking.
    assert results["baseline oob_transient"] == "ok"
    assert results["no-oob-construction oob_transient"] == \
        "ub:Out_of_bounds_pointer_arithmetic"
    # Q25: permitting cross-object relational comparison.
    assert results["baseline relational"] == "ok"
    assert results["no-cross-relational relational"] == \
        "ub:Relational_distinct_objects"
    # DR260: without the provenance check, the store corrupts y.
    assert results["baseline dr260"] == "ub:Access_wrong_provenance"
    assert results["no-provenance-check dr260"] == "ok"
    print("\nmodel-option ablations (candidate de facto model):")
    for name, verdict in results.items():
        print(f"  {name:45s} {verdict}")
