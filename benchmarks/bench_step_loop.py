"""Compiled back end vs tree evaluator on straight-line-heavy loops.

The compiled back end (:mod:`repro.dynamics.compile`) lowers each
Core procedure once into slot-threaded closures; the tree evaluator —
the oracle of record — re-dispatches on Core AST nodes every step.
On straight-line-heavy programs (tight loops of pure arithmetic,
array traffic, chained assignments) the lowering should buy at least
a 3× throughput win, and this benchmark pins that floor so a
regression in the lowering or the inline-request fast path fails CI
instead of silently eroding the back end's reason to exist.

PR 7's telemetry is the measuring stick: each timed run executes
under ``obs.collecting()`` and the numbers come from the driver's own
``driver.steps`` counter and ``driver.run_s`` wall histogram — the
same feed ``cerberus-py stats`` renders as steps/s.  The two back
ends count steps differently (the compiled evaluator *elides*
request round-trips — that is much of the win), so raw steps/s is
apples-to-oranges; the asserted ratio is **work-normalized**: both
sides are charged the tree backend's step count for the identical
program, which reduces to the wall-clock ratio of the same work.

Measurement discipline: min-of-``ROUNDS`` with the two back ends
interleaved round-robin, so a machine-load spike hits both sides
rather than biasing one.  Cold numbers are recorded too: the
one-time ``lower_program`` cost and the first compiled run that pays
it, next to the warm steady-state runs the assertion uses.

The JSON perf record is printed on the ``-s`` stream and written to
``benchmarks/perf_step_loop.json``; per-shape ratios must clear
``MIN_SHAPE_RATIO`` (or their entry in ``SHAPE_FLOORS`` — the call
shapes pin the round-2 specialized call protocol at 3×) and the
aggregate must clear ``MIN_RATIO`` (3.5×).
"""

import gc
import json
import threading
import time
from pathlib import Path

from repro import obs
from repro.dynamics.compile import lower_program
from repro.pipeline import compile_for_model

MODEL = "concrete"
ROUNDS = 3
#: The headline floor: aggregate work-normalized steps/s, compiled
#: over tree, across every shape.  Raised from 3.0 when round 2
#: (specialized calls, fused instructions, run mode) landed.
MIN_RATIO = 3.5
#: Per-shape sanity floor (a single shape collapsing below this is a
#: lowering regression even if the aggregate still clears the
#: headline).
MIN_SHAPE_RATIO = 2.0
#: Shapes with their own, higher floor.  The call shapes pin the
#: specialized call protocol: before it they measured ~2× (the
#: generic call_proc path re-dispatched and copied a dict global env
#: per call); with pre-resolved callee layouts and direct slot-write
#: argument passing they must hold >= 3×.
SHAPE_FLOORS = {"call_heavy": 3.0, "ptr_call": 3.0}

# Straight-line-heavy step loops: no I/O, no nondeterminism — one
# path, thousands of evaluator steps.  Unsigned arithmetic keeps
# every operation defined under all models.
SHAPES = {
    # chained assignments: four stores per iteration, each a small
    # pure expression — the inline-request fast path's home turf
    "arith_unrolled": r'''
unsigned acc;
int main(void) {
    int i;
    unsigned s = 1u;
    for (i = 0; i < 800; i++) {
        s = s * 3u + 7u;
        s = s * 5u + 1u;
        s = s * 7u + 3u;
        s = s * 9u + 5u;
    }
    acc = s;
    return 0;
}
''',
    # one wide pure expression per store: mul/div/mod/xor/or trees
    # the lowering folds into pre-resolved closures
    "heavy_expr": r'''
unsigned acc;
int main(void) {
    int i;
    unsigned s = 1u;
    for (i = 0; i < 1200; i++)
        s = ((s * 3u) ^ (s / 5u)) + ((s * 4u) | 1u) + (s % 7u);
    acc = s;
    return 0;
}
''',
    # array stencil: three indexed loads + one indexed store per
    # inner iteration — pointer arithmetic and memory traffic
    "array_stencil": r'''
unsigned acc;
int main(void) {
    unsigned t[64];
    int i, j;
    for (i = 0; i < 64; i++) t[i] = (unsigned)i;
    for (j = 0; j < 30; j++)
        for (i = 1; i < 63; i++)
            t[i] = (t[i - 1] + t[i] * 2u + t[i + 1]) / 4u;
    acc = t[32];
    return 0;
}
''',
    # call-heavy: three short calls per iteration — the specialized
    # call protocol's home turf (per-site callee cache, direct slot
    # writes into the callee frame, pure-callee fast path)
    "call_heavy": r'''
unsigned acc;
unsigned mix(unsigned s, unsigned k) {
    return s * k + (s / 8u) + 1u;
}
int main(void) {
    int i;
    unsigned s = 1u;
    for (i = 0; i < 600; i++) {
        s = mix(s, 3u);
        s = mix(s, 5u);
        s = mix(s, 7u);
    }
    acc = s;
    return 0;
}
''',
    # pointer-argument calls: the callee dereferences and stores
    # through a pointer parameter — these rode the generic ECcall
    # route before round 2 lowered them onto the same fast path
    "ptr_call": r'''
unsigned acc;
void bump(unsigned *p, unsigned k) {
    *p = *p * k + 1u;
}
int main(void) {
    int i;
    unsigned s = 1u;
    for (i = 0; i < 500; i++) {
        bump(&s, 3u);
        bump(&s, 5u);
    }
    acc = s;
    return 0;
}
''',
}


def _observed_run(program, backend):
    """One run under a fresh metrics scope; returns the outcome plus
    the driver's own telemetry (steps, instrumented wall seconds).

    Two pieces of measurement hygiene isolate the run from harness
    state that would otherwise skew the ratio:

    * Cyclic GC is off during the timed run (and the heap collected
      before it): collections trigger on *allocation counts*, so the
      faster back end — same allocations in a fraction of the wall
      time — absorbs proportionally more GC pauses per second, paying
      for whatever unrelated garbage the process accumulated.
    * The run executes on a fresh thread: CPython allocates Python
      frames in fixed-size chunks, and a recursion that starts deep
      in the caller's stack (a pytest runner is ~30 frames down) can
      straddle a chunk boundary, re-allocating a chunk on every call
      cycle.  The compiled back end's closure recursion is exactly
      such a hot call cycle; starting from a shallow dedicated stack
      measures the back end, not where the harness happened to sit."""
    result = {}

    def work():
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            with obs.collecting() as registry:
                result["outcome"] = program.run(MODEL, backend=backend)
        finally:
            if was_enabled:
                gc.enable()
        result["steps"] = registry.counters.get("driver.steps", 0)
        result["wall"] = registry.histograms.get(
            "driver.run_s", [0, 0.0])[1]

    t = threading.Thread(target=work)
    t.start()
    t.join()
    return result["outcome"], result["steps"], result["wall"]


def _outcome_key(o):
    return (o.status, o.exit_code, o.stdout,
            o.ub.name if o.ub else None, o.ub_detail, o.error)


def test_step_loop(benchmark):
    entries = {}
    agg = {"tree_s": 0.0, "compiled_s": 0.0}
    for name, source in SHAPES.items():
        program = compile_for_model(source, MODEL)

        # Cold numbers first: the one-time lowering cost on a fresh
        # Core term, then the first compiled run that pays it inside
        # a process with no warm per-term cache.
        t0 = time.perf_counter()
        lowered = lower_program(program.core)
        cold_lower_s = time.perf_counter() - t0
        assert lowered.layout() == program.lowered().layout()
        cold_out, cold_steps, cold_run_s = \
            _observed_run(program, "compiled")

        # Both sides must be observably identical before any timing
        # is worth recording.
        tree_out, tree_steps, _ = _observed_run(program, "tree")
        assert _outcome_key(cold_out) == _outcome_key(tree_out), name
        assert tree_out.status == "done" and \
            tree_out.exit_code == 0, name

        # Warm steady state: min-of-ROUNDS, back ends interleaved so
        # load spikes hit both sides.
        walls = {"tree": [], "compiled": []}
        if name == "array_stencil":
            out = benchmark.pedantic(
                lambda: _observed_run(program, "compiled"),
                rounds=1, iterations=1)
            walls["compiled"].append(out[2])
        for _ in range(ROUNDS):
            for backend in ("tree", "compiled"):
                walls[backend].append(
                    _observed_run(program, backend)[2])
        tree_s = min(walls["tree"])
        compiled_s = min(walls["compiled"])

        # Work-normalized steps/s: both sides charged the tree step
        # count for the identical program (the compiled evaluator
        # elides request round-trips, so its raw count is smaller).
        tree_sps = tree_steps / tree_s
        normalized_sps = tree_steps / compiled_s
        ratio = round(normalized_sps / tree_sps, 2)
        entries[name] = {
            "cold_lower_s": round(cold_lower_s, 4),
            "cold_first_run_s": round(cold_run_s, 4),
            "tree": {"wall_s": round(tree_s, 4),
                     "steps": tree_steps,
                     "steps_per_s": round(tree_sps, 1)},
            "compiled": {"wall_s": round(compiled_s, 4),
                         "steps": cold_steps,
                         "steps_per_s":
                             round(cold_steps / compiled_s, 1),
                         "work_normalized_steps_per_s":
                             round(normalized_sps, 1)},
            "ratio": ratio,
        }
        agg["tree_s"] += tree_s
        agg["compiled_s"] += compiled_s
        floor = SHAPE_FLOORS.get(name, MIN_SHAPE_RATIO)
        entries[name]["min_ratio_asserted"] = floor
        assert ratio >= floor, (name, entries)

    aggregate_ratio = round(agg["tree_s"] / agg["compiled_s"], 2)
    record = {
        "benchmark": "step_loop",
        "model": MODEL,
        "rounds": ROUNDS,
        "measure": "min-of-rounds interleaved, driver.run_s telemetry",
        "shapes": entries,
        "aggregate": {"tree_s": round(agg["tree_s"], 4),
                      "compiled_s": round(agg["compiled_s"], 4),
                      "steps_per_s_ratio": aggregate_ratio},
        "min_ratio_asserted": MIN_RATIO,
    }
    out_path = Path(__file__).with_name("perf_step_loop.json")
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + json.dumps(record))
    assert aggregate_ratio >= MIN_RATIO, record
