"""Event logging is zero-cost when not exploring (ROADMAP claim).

The driver notifies the oracle of every memory action so the explorer
can compute footprints and sleep sets — but a plain single-path run
(the common case: ``cerberus-py file.c``, the whole de facto suite in
"run" mode) reads none of it.  The driver therefore decides *once*,
at construction, whether the oracle can possibly consume action
events (``record_events`` on, or a non-empty POR sleep set) and skips
the ``note_action`` calls entirely otherwise.

Two assertions pin the claim:

* **zero-call** — a tripwire oracle whose ``note_action`` raises runs
  a store-heavy program to completion untouched when not exploring,
  and trips immediately when event recording is on (the tripwire is
  real);
* **throughput** — the non-exploring run is benchmarked and its
  wall-clock recorded next to an identical run with event recording
  on, in ``benchmarks/perf_event_logging.json``.
"""

import json
import time
from pathlib import Path

from repro.dynamics.driver import Driver, Oracle
from repro.pipeline import compile_c

MODEL = "concrete"

# Store-heavy: every loop iteration is several memory actions, so any
# per-action logging leak multiplies.
SOURCE = r'''
int t[64];
int main(void) {
    int i, j, acc = 0;
    for (i = 0; i < 200; i++)
        for (j = 0; j < 64; j++) {
            t[j] = i + j;
            acc += t[j];
        }
    return acc & 1;
}
'''


class TripwireOracle(Oracle):
    """Raises if the driver forwards a single action event."""

    def note_action(self, *args, **kwargs):
        raise AssertionError(
            "note_action called on a non-exploring run")


def _run(oracle):
    program = compile_c(SOURCE)
    driver = Driver(program.core, program.make_model(MODEL), oracle)
    outcome = driver.run("main")
    assert outcome.status in ("done", "exit"), outcome.status
    return outcome


def test_non_exploring_run_never_logs(benchmark):
    # Zero-call: the tripwire never fires without event recording...
    outcome = benchmark.pedantic(lambda: _run(TripwireOracle()),
                                 rounds=1, iterations=1)
    assert outcome.exit_code == 0

    # ...and the tripwire is genuine: with recording on, the very
    # same program trips it on its first memory action.
    try:
        _run(TripwireOracle(record_events=True))
    except AssertionError as exc:
        assert "note_action" in str(exc)
    else:
        raise AssertionError("tripwire oracle never saw an event — "
                             "the zero-call assertion is vacuous")

    # Throughput record: identical runs, logging off vs on.
    t0 = time.perf_counter()
    _run(Oracle())
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run(Oracle(record_events=True))
    logging_s = time.perf_counter() - t0

    record = {
        "benchmark": "event_logging",
        "model": MODEL,
        "plain_run_s": round(plain_s, 4),
        "recording_run_s": round(logging_s, 4),
        "logging_overhead_x": round(logging_s / plain_s, 2),
    }
    out_path = Path(__file__).with_name("perf_event_logging.json")
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + json.dumps(record))
