"""Farm server service-path performance: warm-request round-trip
latency, in-flight dedup coalesce rate, and N-client throughput
against a real ``cerberus-py serve`` daemon.

Three service properties are measured on one live daemon subprocess
(4 pre-warmed workers, temp unix socket):

* **warm RTT** — median round-trip of a no-compute op (``health``)
  and of a result-cache-hit ``submit``: the protocol + event-loop
  overhead a client pays when the store already knows the answer;
* **dedup coalesce rate** — concurrent identical submissions while
  the job is in flight must coalesce (no second computation);
* **N-client throughput floor** — 4 client threads hammering a warm
  server with the whole corpus must finish no slower than the serial
  cold direct-API sweep of that corpus (the asserted floor: the
  service layer may not cost more than it saves).

A JSON perf record is printed on the ``-s`` stream and written to
``benchmarks/perf_farm_server.json``.
"""

import json
import os
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.farm.campaign import sweep_campaign
from repro.farm.client import FarmClient
from repro.pipeline import clear_compile_cache

#: 12 distinct tiny programs: enough corpus for a throughput figure,
#: small enough that the serial cold baseline stays a few seconds.
CORPUS = [(f"p{i}.c",
           f"int main(void){{ int v = {i}; return v * 2; }}\n")
          for i in range(12)]
MODELS = ["concrete"]
N_CLIENTS = 4
#: The in-flight dedup probe: a large interleaving space (four
#: unsequenced writes to distinct objects — no UB), ~seconds of
#: exploration, so concurrent duplicates reliably coalesce.
SLOW = ("int a; int b; int c; int d;\n"
        "int main(void){ (a=1)+(b=2)+(c=3)+(d=4);"
        " return a+b+c+d-10; }\n")
SLOW_PATHS = 4000


class _Daemon:
    def __init__(self, workers: int):
        self.tmp = tempfile.mkdtemp(prefix="cerb-bench-srv-")
        self.socket_path = os.path.join(self.tmp, "d.sock")
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            __import__("repro").__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep \
            + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", self.socket_path,
             "--store", os.path.join(self.tmp, "store"),
             "--workers", str(workers)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL, start_new_session=True)
        FarmClient(self.socket_path).wait_healthy(60)

    def client(self, **kw):
        return FarmClient(self.socket_path, **kw)

    def cleanup(self):
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=30)
        shutil.rmtree(self.tmp, ignore_errors=True)


def _submit_corpus(daemon, client_name):
    client = daemon.client(client=client_name, wait_timeout=600)
    for name, source in CORPUS:
        response = client.submit(source, name=name, models=MODELS)
        assert response["report"]["ok"], response
    return client


def test_farm_server(benchmark):
    clear_compile_cache()
    cold_root = tempfile.mkdtemp(prefix="cerb-bench-cold-")
    daemon = _Daemon(workers=N_CLIENTS)
    try:
        # Serial cold direct path: the pre-service baseline.
        t0 = time.perf_counter()
        results, campaign = sweep_campaign(
            CORPUS, models=MODELS, jobs=1,
            store=os.path.join(cold_root, "store"))
        serial_cold_s = time.perf_counter() - t0
        assert all(r.ok for r in results)

        # Cold server pass: fills the daemon's store and result
        # records (every job compiles + executes once).
        t0 = time.perf_counter()
        _submit_corpus(daemon, "warmup")
        server_cold_s = time.perf_counter() - t0

        # Warm RTT: no-compute ops against the live daemon.
        client = daemon.client()
        health_rtts = []
        for _ in range(50):
            t0 = time.perf_counter()
            client.health()
            health_rtts.append(time.perf_counter() - t0)
        name0, source0 = CORPUS[0]
        cached_rtts = []
        for _ in range(20):
            t0 = time.perf_counter()
            response = client.submit(source0, name=name0,
                                     models=MODELS)
            cached_rtts.append(time.perf_counter() - t0)
            assert response["cached"]

        # Dedup coalesce rate: concurrent identical in-flight work.
        before = client.stats()["server"]["counters"]
        seed = client.submit(SLOW, name="slow.c", models=MODELS,
                             mode="explore", max_paths=SLOW_PATHS,
                             wait=False)
        def dup(i):
            daemon.client(client=f"dup-{i}", wait_timeout=600).submit(
                SLOW, name="slow.c", models=MODELS, mode="explore",
                max_paths=SLOW_PATHS)
        threads = [threading.Thread(target=dup, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        client.wait_result(seed["job"], timeout=600)
        after = client.stats()["server"]["counters"]
        dup_submits = after["submits"] - before["submits"] - 1
        coalesced = (after["dedup_coalesced"]
                     - before["dedup_coalesced"]) \
            + (after["result_cache_hits"]
               - before["result_cache_hits"])
        executed = after["jobs_executed"] - before["jobs_executed"]
        assert executed == 1, \
            f"dedup must pin one computation, got {executed}"
        coalesce_rate = coalesced / dup_submits

        # N-client throughput on the warm server: every client
        # submits the whole corpus; all requests are result-record
        # hits, so the service layer is the only cost.
        def hammer(i):
            _submit_corpus(daemon, f"client-{i}")
        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(N_CLIENTS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        warm_wall_s = benchmark.pedantic(
            lambda: time.perf_counter() - t0, rounds=1, iterations=1)
        requests = N_CLIENTS * len(CORPUS)

        record = {
            "benchmark": "farm_server",
            "corpus": {"programs": len(CORPUS), "models": MODELS},
            "workers": N_CLIENTS,
            "serial_cold_s": round(serial_cold_s, 4),
            "server_cold_s": round(server_cold_s, 4),
            "warm_rtt_health_ms": round(
                statistics.median(health_rtts) * 1000, 3),
            "warm_rtt_cached_submit_ms": round(
                statistics.median(cached_rtts) * 1000, 3),
            "dedup": {"submissions": dup_submits + 1,
                      "executed": executed,
                      "coalesce_rate": round(coalesce_rate, 4)},
            "clients": N_CLIENTS,
            "warm_requests": requests,
            "warm_wall_s": round(warm_wall_s, 4),
            "warm_throughput_rps": round(requests / warm_wall_s, 2),
            "speedup_warm_server_vs_serial_cold": round(
                serial_cold_s / warm_wall_s, 2),
        }
        out_path = Path(__file__).with_name("perf_farm_server.json")
        out_path.write_text(json.dumps(record, indent=2) + "\n")
        print("\n" + json.dumps(record))

        # The asserted floors: identical submissions coalesce to one
        # computation, and the warm 4-worker server clears the whole
        # N-client load at least as fast as one serial cold sweep.
        assert coalesce_rate == 1.0, record
        assert warm_wall_s <= serial_cold_s, record
    finally:
        daemon.cleanup()
        shutil.rmtree(cold_root, ignore_errors=True)
