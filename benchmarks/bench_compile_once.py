"""Compile-once batch execution vs per-model recompilation.

The paper's methodology (§2–§5) runs the *same* C program under many
memory object models and compares verdicts. Before this seam existed,
every ``run_c`` call re-ran the whole front end (preprocess -> Cabs ->
Ail -> Typed Ail -> Core); a 5-model sweep therefore paid ~5× the
translation cost. ``run_many`` translates once and executes the shared
Core artifact per model.

The sweep is run under a single implementation environment (CHERI128 —
the one the cheri model pins; the integer environment matches LP64) so
front-end translation happens exactly once per program. Both sweeps
must produce identical verdicts, the compile-once sweep must be ≥3×
faster, and a JSON perf record is printed on the ``-s`` stream and
written to ``benchmarks/perf_compile_once.json``.
"""

import json
import time
from pathlib import Path

from repro.ctypes.implementation import CHERI128
from repro.pipeline import MODELS, clear_compile_cache, compile_c, \
    run_many

# A translation-heavy, execution-light program — the shape of the
# paper's test-suite programs (many small definitions, a short main).
# The printf calls cover the width-masking and *-width fixes, so the
# sweep also guards the observable layer the verdicts depend on.
SOURCE = r'''
#include <stdio.h>
#include <limits.h>

struct point { int x, y; };
struct rect { struct point lo, hi; };
union word { unsigned u; unsigned char bytes[4]; };

static unsigned mix(unsigned h, unsigned v) { h ^= v + 0x9e3779b9u + (h << 6) + (h >> 2); return h; }
static int clamp(int v, int lo, int hi) { return v < lo ? lo : v > hi ? hi : v; }
static int area(struct rect r) { return (r.hi.x - r.lo.x) * (r.hi.y - r.lo.y); }
static int dot(struct point a, struct point b) { return a.x * b.x + a.y * b.y; }
static long scale(long v, long num, long den) { return v * num / den; }
static unsigned rotl(unsigned v, int s) { return (v << s) | (v >> (32 - s)); }
static unsigned rotr(unsigned v, int s) { return (v >> s) | (v << (32 - s)); }
static int sign(int v) { return (v > 0) - (v < 0); }
static unsigned parity(unsigned v) { v ^= v >> 16; v ^= v >> 8; v ^= v >> 4; v ^= v >> 2; v ^= v >> 1; return v & 1u; }
static int wrap_index(int i, int n) { int m = i % n; return m < 0 ? m + n : m; }
static unsigned sat_add(unsigned a, unsigned b) { unsigned s = a + b; return s < a ? UINT_MAX : s; }
static unsigned sat_sub(unsigned a, unsigned b) { return a < b ? 0u : a - b; }
static int imin(int a, int b) { return a < b ? a : b; }
static int imax(int a, int b) { return a > b ? a : b; }
static int iabs(int v) { return v < 0 ? -v : v; }
static int gcd(int a, int b) { while (b) { int t = a % b; a = b; b = t; } return a; }
static int lcm(int a, int b) { return a / gcd(a, b) * b; }
static unsigned popcount(unsigned v) { unsigned c = 0; while (v) { v &= v - 1; c++; } return c; }
static unsigned ilog2(unsigned v) { unsigned r = 0; while (v >>= 1) r++; return r; }
static unsigned next_pow2(unsigned v) { v--; v |= v >> 1; v |= v >> 2; v |= v >> 4; v |= v >> 8; v |= v >> 16; return v + 1; }
static int is_leap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }
static int manhattan(struct point a, struct point b) { return iabs(a.x - b.x) + iabs(a.y - b.y); }
static int chebyshev(struct point a, struct point b) { return imax(iabs(a.x - b.x), iabs(a.y - b.y)); }
static int contains(struct rect r, struct point p) { return p.x >= r.lo.x && p.x < r.hi.x && p.y >= r.lo.y && p.y < r.hi.y; }
static struct rect normalised(struct rect r) { struct rect out = {{ imin(r.lo.x, r.hi.x), imin(r.lo.y, r.hi.y) }, { imax(r.lo.x, r.hi.x), imax(r.lo.y, r.hi.y) }}; return out; }
static unsigned crc_step(unsigned crc, unsigned char byte) { crc ^= byte; for (int k = 0; k < 8; k++) crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u))); return crc; }
static int str_count(const char *s, char c) { int n = 0; while (*s) n += (*s++ == c); return n; }
static void swap_ints(int *a, int *b) { int t = *a; *a = *b; *b = t; }
static void sort3(int *a, int *b, int *c) { if (*a > *b) swap_ints(a, b); if (*b > *c) swap_ints(b, c); if (*a > *b) swap_ints(a, b); }
static int median3(int a, int b, int c) { sort3(&a, &b, &c); return b; }
static long fixed_mul(long a, long b) { return (a * b) >> 16; }
static long fixed_div(long a, long b) { return (a << 16) / b; }
static unsigned to_gray(unsigned v) { return v ^ (v >> 1); }
static unsigned from_gray(unsigned g) { unsigned v = 0; for (; g; g >>= 1) v ^= g; return v; }
static int tri_area2(struct point a, struct point b, struct point c) { return (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y); }
static int collinear(struct point a, struct point b, struct point c) { return tri_area2(a, b, c) == 0; }
static struct point midpoint(struct point a, struct point b) { struct point m = { (a.x + b.x) / 2, (a.y + b.y) / 2 }; return m; }
static struct rect bounding(struct point a, struct point b) { struct rect r = {{ imin(a.x, b.x), imin(a.y, b.y) }, { imax(a.x, b.x), imax(a.y, b.y) }}; return r; }
static int overlap(struct rect a, struct rect b) { return a.lo.x < b.hi.x && b.lo.x < a.hi.x && a.lo.y < b.hi.y && b.lo.y < a.hi.y; }
static unsigned hash_point(struct point p) { return mix(mix(0u, (unsigned)p.x), (unsigned)p.y); }
static unsigned bytes_reversed(unsigned v) { return (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) | (v << 24); }
static int digit_sum(int v) { int s = 0; v = iabs(v); while (v) { s += v % 10; v /= 10; } return s; }
static int is_pow10(int v) { while (v > 9 && v % 10 == 0) v /= 10; return v == 1; }
static long tri_number(long n) { return n * (n + 1) / 2; }
static int quadrant(struct point p) { if (p.x > 0 && p.y > 0) return 1; if (p.x < 0 && p.y > 0) return 2; if (p.x < 0 && p.y < 0) return 3; if (p.x > 0 && p.y < 0) return 4; return 0; }
static unsigned interleave8(unsigned char a, unsigned char b) { unsigned out = 0; for (int k = 0; k < 8; k++) out |= ((unsigned)((a >> k) & 1) << (2 * k)) | ((unsigned)((b >> k) & 1) << (2 * k + 1)); return out; }

int main(void) {
    struct rect r = {{1, 2}, {4, 6}};
    struct point p = {3, 4};
    printf("%d %d %d %ld\n", area(r), clamp(9, 0, 5),
           sign(-3) + wrap_index(-1, 4), scale(10L, 3L, 2L));
    printf("%u %hu [%*d] %u\n", -1, -1, 5, 42,
           sat_add(4294967290u, 10u));
    return contains(r, p) - 1;
}
'''

MODEL_LIST = list(MODELS)


def _verdict(outcome):
    return (outcome.status, outcome.exit_code, outcome.stdout,
            outcome.ub.name if outcome.ub else None)


def sweep_recompile():
    """The old shape: one full front-end translation per model."""
    return {model: compile_c(SOURCE, CHERI128, use_cache=False)
            .run(model) for model in MODEL_LIST}


def sweep_compile_once():
    """The batch API with a cold cache: one translation, five runs."""
    clear_compile_cache()
    return run_many(SOURCE, models=MODEL_LIST, impl=CHERI128)


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_compile_once_sweep(benchmark):
    base = sweep_recompile()
    batch = benchmark.pedantic(sweep_compile_once, rounds=1,
                               iterations=1)

    # Identical verdicts, model for model.
    assert list(batch) == MODEL_LIST
    for model in MODEL_LIST:
        assert _verdict(batch[model]) == _verdict(base[model]), model
    assert batch["concrete"].stdout.endswith(
        "4294967295 65535 [   42] 4294967295\n")

    recompile_s = _best_of(sweep_recompile)
    compile_once_s = _best_of(sweep_compile_once)
    record = {
        "benchmark": "compile_once",
        "models": MODEL_LIST,
        "impl": "CHERI128",
        "recompile_sweep_s": round(recompile_s, 4),
        "compile_once_sweep_s": round(compile_once_s, 4),
        "speedup": round(recompile_s / compile_once_s, 2),
    }
    out_path = Path(__file__).with_name("perf_compile_once.json")
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + json.dumps(record))
    assert record["speedup"] >= 3.0, record
