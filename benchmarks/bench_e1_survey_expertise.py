"""E1 — §2 survey respondent expertise table (323 responses)."""

from repro.survey import EXPERTISE, RESPONSES_TOTAL, expertise_table

PAPER_ROWS = {
    "C applications programming": 255,
    "C systems programming": 230,
    "Linux developer": 160,
    "Other OS developer": 111,
    "C embedded systems programming": 135,
    "C standard": 70,
    "C or C++ standards committee member": 8,
    "Compiler internals": 64,
    "GCC developer": 15,
    "Clang developer": 26,
    "Other C compiler developer": 22,
    "Program analysis tools": 44,
    "Formal semantics": 18,
    "no response": 6,
    "other": 18,
}


def test_e1_expertise_table(benchmark):
    table = benchmark(expertise_table)
    assert RESPONSES_TOTAL == 323
    assert dict(EXPERTISE) == PAPER_ROWS
    print("\n" + table)
