"""E10 — Fig. 3: the left-shift elaboration, point by point.

The paper's figure shows the ISO 6.5.7 text beside the calculated Core
for ``e1 << e2``. We regenerate the Core for a signed and an unsigned
shift and execute every semantic arm the figure contains: the negative
shift, the too-large shift, the signed-overflow case, the unsigned
modulo reduction, and the unspecified-operand cases (Q43/Q52).
"""

from repro.core import pretty_program
from repro.pipeline import compile_c, run_c


def run_all_arms():
    return {
        "ok": run_c("int main(void){ return (1 << 4) - 16; }"),
        "negative": run_c(
            "int main(void){ int n = -1; return 1 << n; }"),
        "too_large": run_c(
            "int main(void){ int n = 40; return 1 << n; }"),
        "signed_overflow": run_c(
            "int main(void){ int x = 1; return x << 31; }"),
        "unsigned_modulo": run_c(r'''
#include <stdio.h>
int main(void){ unsigned x = 3u; printf("%u\n", x << 31); return 0; }
'''),
        "unspec_left_unsigned": run_c(r'''
#include <stdio.h>
int main(void){ unsigned u; unsigned v = u << 1; return 0; }''',
                                      model="provenance"),
        "unspec_right": run_c(
            "int main(void){ int n; return 1 << n; }",
            model="provenance"),
    }


def test_e10_shift_arms(benchmark):
    r = benchmark.pedantic(run_all_arms, rounds=1, iterations=1)
    assert r["ok"].exit_code == 0
    assert r["negative"].ub.name == "Negative_shift"
    assert r["too_large"].ub.name == "Shift_too_large"
    assert r["signed_overflow"].ub.name == "Exceptional_condition"
    assert r["unsigned_modulo"].stdout == "2147483648\n"
    # Fig. 3's case split: unspecified *left* operand of an unsigned
    # shift propagates Unspecified; an unspecified *right* operand is
    # Exceptional_condition.
    assert r["unspec_left_unsigned"].status == "done"
    assert r["unspec_right"].ub.name == "Exceptional_condition"
    print("\nISO 6.5.7 arms, all exercised:")
    for arm, out in r.items():
        print(f"  {arm:22s} {out.summary()}")


def test_e10_core_matches_fig3(benchmark):
    pipe = benchmark(compile_c,
                     "int main(void){ int a = 2, b = 3; "
                     "return (a << b) - 16; }")
    text = pretty_program(pipe.core)
    for needle in ("let weak", "unseq(", "undef(Negative_shift)",
                   "undef(Shift_too_large)",
                   "undef(Exceptional_condition)", "ctype_width",
                   "is_representable", "Unspecified", "Specified"):
        assert needle in text, needle
    print("\nFig. 3 ingredients present in the calculated Core: "
          "let weak + unseq sequencing, the three undef arms, "
          "ctype_width / is_representable auxiliaries, "
          "Specified/Unspecified case split")
