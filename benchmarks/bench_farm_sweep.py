"""Farm campaign throughput: serial cold store vs ``jobs=4`` warm
store on a Csmith differential corpus.

The farm's two scaling levers are measured together on one
reproducible corpus (explicit seed list, so every run sweeps the same
programs):

* **artifact store** — the cold pass translates every program and
  fills the store; the warm pass must perform **zero** front-end
  translations (asserted via the campaign report's counters — the
  whole front end is skipped, execution replays the pickled Core);
* **worker pool** — the warm ``jobs=4`` campaign must beat the cold
  serial campaign wall-clock (on a single-core container the win
  comes from skipping translation; with more cores it compounds).

A JSON perf record is printed on the ``-s`` stream and written to
``benchmarks/perf_farm_sweep.json``.
"""

import json
import shutil
import tempfile
from pathlib import Path

from repro.farm.campaign import csmith_campaign
from repro.pipeline import clear_compile_cache

SEEDS = [41000 + i for i in range(24)]
SIZE = 16
MODELS = ["concrete"]


def _campaign(jobs, store):
    clear_compile_cache()   # every pass starts with a cold process cache
    report, campaign = csmith_campaign(seeds=SEEDS, size=SIZE,
                                       models=MODELS, jobs=jobs,
                                       store=store)
    return report, campaign


def test_farm_sweep(benchmark):
    cold_root = Path(tempfile.mkdtemp(prefix="farm-bench-cold-"))
    warm_root = Path(tempfile.mkdtemp(prefix="farm-bench-warm-"))
    try:
        serial_report, serial_cold = _campaign(1, cold_root / "store")
        jobs4_cold_report, jobs4_cold = _campaign(4,
                                                  warm_root / "store")
        # Same store as the serial pass: now warm.
        warm_report, jobs4_warm = benchmark.pedantic(
            lambda: _campaign(4, cold_root / "store"),
            rounds=1, iterations=1)

        # All three campaigns ran the same corpus to the same verdicts.
        assert serial_report.summary() == warm_report.summary()
        assert serial_report.summary() == jobs4_cold_report.summary()
        assert serial_report.disagree == 0
        assert serial_report.failed == 0

        # Cold passes translate; the warm pass must not: the store's
        # hit counters prove the front end never ran.
        assert serial_cold.cache["translations"] == len(SEEDS)
        assert jobs4_warm.cache["translations"] == 0
        assert jobs4_warm.cache["store_hits"] == len(SEEDS)
        assert jobs4_warm.cache["store_hit_rate"] == 1.0

        record = {
            "benchmark": "farm_sweep",
            "corpus": {"seeds": [SEEDS[0], SEEDS[-1]],
                       "programs": len(SEEDS), "size": SIZE},
            "models": MODELS,
            "serial_cold_s": serial_cold.wall_s,
            "jobs4_cold_s": jobs4_cold.wall_s,
            "jobs4_warm_s": jobs4_warm.wall_s,
            "speedup_warm_jobs4_vs_serial_cold": round(
                serial_cold.wall_s / jobs4_warm.wall_s, 2),
            "translations_cold": serial_cold.cache["translations"],
            "translations_warm": jobs4_warm.cache["translations"],
            "store_hits_warm": jobs4_warm.cache["store_hits"],
        }
        out_path = Path(__file__).with_name("perf_farm_sweep.json")
        out_path.write_text(json.dumps(record, indent=2) + "\n")
        print("\n" + json.dumps(record))
        assert record["speedup_warm_jobs4_vs_serial_cold"] > 1.0, \
            record
    finally:
        shutil.rmtree(cold_root, ignore_errors=True)
        shutil.rmtree(warm_root, ignore_errors=True)
