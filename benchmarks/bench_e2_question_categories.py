"""E2 — §2 table: 85 design-space questions in 22 categories."""

from repro.survey.report import design_space_table
from repro.testsuite import QUESTIONS, category_counts

PAPER_TABLE = {
    "Pointer provenance basics": 3,
    "Pointer provenance via integer types": 5,
    "Pointers involving multiple provenances": 5,
    "Pointer provenance via pointer representation copying": 4,
    "Pointer provenance and union type punning": 2,
    "Pointer provenance via IO": 1,
    "Stability of pointer values": 1,
    "Pointer equality comparison (with == or !=)": 3,
    "Pointer relational comparison (with <, >, <=, or >=)": 3,
    "Null pointers": 3,
    "Pointer arithmetic": 6,
    "Casts between pointer types": 2,
    "Accesses to related structure and union types": 4,
    "Pointer lifetime end": 2,
    "Invalid accesses": 2,
    "Trap representations": 2,
    "Unspecified values": 11,
    "Structure and union padding": 13,
    "Basic effective types": 2,
    "Effective types and character arrays": 1,
    "Effective types and subobjects": 6,
    "Other questions": 5,
}


def test_e2_category_table(benchmark):
    counts = benchmark(category_counts)
    assert counts == PAPER_TABLE
    assert len(QUESTIONS) == 85
    print("\n" + design_space_table())
