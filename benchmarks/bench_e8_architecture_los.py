"""E8 — Fig. 1: the pipeline architecture with per-phase line counts.

The paper reports non-comment lines of specification (LOS) for each
Cerberus phase; we measure our own phases' non-comment, non-blank lines
of Python and print them beside the paper's numbers. The *shape* to
reproduce: parsing and the front-end dominate; the elaboration and the
Core dynamics are the next-largest pieces; the memory model is a
separately pluggable ~10%.
"""

import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

PAPER_LOS = [
    ("parsing", 2600, ["lex", "cpp", "cparser"]),
    ("Cabs", 600, ["cabs"]),
    ("Cabs_to_Ail", 2800, ["ail"]),
    ("type inference/checking", 2800, ["typing", "ctypes"]),
    ("elaboration", 1700, ["elab"]),
    ("Core", 1400, ["core"]),
    ("Core operational semantics", 3100, ["dynamics", "libc"]),
    ("memory object model", 1500, ["memory"]),
]


def _count_module(path: pathlib.Path) -> int:
    """Non-blank, non-'#'-comment lines (docstrings count: like Lem
    specifications, the prose is part of the spec)."""
    total = 0
    for f in path.rglob("*.py"):
        for line in f.read_text().splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            total += 1
    return total


def measure():
    return {phase: sum(_count_module(SRC / m) for m in modules)
            for phase, _, modules in PAPER_LOS}


def test_e8_architecture_los(benchmark):
    ours = benchmark(measure)
    print("\nFig. 1 architecture (paper LOS vs this reproduction's "
          "LoC):")
    total_paper = total_ours = 0
    for phase, paper, _ in PAPER_LOS:
        total_paper += paper
        total_ours += ours[phase]
        print(f"  {phase:32s} paper {paper:5d}   ours "
              f"{ours[phase]:5d}")
    print(f"  {'total':32s} paper {total_paper:5d}   ours "
          f"{total_ours:5d}")
    # Shape assertions: every phase exists and is substantial; the
    # front half (parsing+desugaring+typing) dominates, as in the
    # paper.
    assert all(v > 200 for v in ours.values())
    front = (ours["parsing"] + ours["Cabs_to_Ail"]
             + ours["type inference/checking"] + ours["Cabs"])
    assert front > ours["elaboration"]
    assert ours["Core operational semantics"] > ours["Core"]
