"""E11 — §5.6: the sequencing semantics of ``w = x++ + f(z,2);``.

The paper draws this statement's action graph (reads, writes, creates,
kills; sequenced-before edges; the atomic pair; indeterminate
sequencing of the call body). We execute it, reconstruct the action
trace, and assert the graph's structural facts: the x++ load/store pair
is atomic and its store is negative; the call body's actions form an
indeterminately-sequenced region; the final store to w is sequenced
last; and the whole statement has exactly one allowed outcome.
"""

from repro.pipeline import compile_c, explore_c
from repro.dynamics.driver import Driver, Oracle

SRC = r'''
int f(int a, int b) { return a + b; }
int main(void) {
    int w, x = 1, z = 10;
    w = x++ + f(z, 2);
    return w - 13 + (x - 2);
}
'''


def trace_actions():
    pipe = compile_c(SRC)
    mem = pipe.make_model("provenance")
    driver = Driver(pipe.core, mem, Oracle())
    log = []
    original = driver._perform_action

    def spy(request, thread):
        value_record = original(request, thread)
        log.append((request[1], request[3]))  # (kind, polarity)
        return value_record

    driver._perform_action = spy
    outcome = driver.run()
    return outcome, log


def test_e11_sequencing_graph(benchmark):
    outcome, log = benchmark.pedantic(trace_actions, rounds=1,
                                      iterations=1)
    assert outcome.status == "done" and outcome.exit_code == 0
    kinds = [k for k, _ in log]
    # The statement performs creates (locals + f's parameters), the
    # atomic R/W of x, loads of z and the arguments, the store to w,
    # and kills for f's parameter objects — the node kinds of the
    # paper's graph.
    assert "create" in kinds and "kill" in kinds
    assert "load" in kinds and "store" in kinds
    # The x++ store is negative (not part of the value computation).
    assert ("store", "neg") in log
    # Exactly one observable behaviour despite the interleavings.
    res = explore_c(SRC, max_paths=300)
    assert {o.summary() for o in res.outcomes} == {"exit=0 stdout=''"}
    print("\naction trace of `w = x++ + f(z,2);` "
          f"({len(log)} actions):")
    print("  " + " ".join(f"{k}{'-' if p == 'neg' else ''}"
                          for k, p in log))
    print(f"  distinct behaviours over {res.paths_run} explored "
          f"paths: 1 (deterministic, as the paper's graph implies)")
