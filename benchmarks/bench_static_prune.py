"""Static POR pre-pruning vs dynamic-only exploration on unseq-heavy
programs.

The :mod:`repro.statics` footprint analysis proves most csmith-style
``unseq`` clusters commute *before* any path runs: their children's
byte ranges are constant and pairwise non-conflicting, so the
evaluator executes them in one order and never allocates a choice
point.  The dynamic machinery — plain DFS enumerating every
interleaving, or sleep-set POR pruning them one replay at a time —
pays per path; the static pre-prune pays once, at analysis time.

Asserted per program and on the aggregate: byte-identical
``distinct()`` behaviour sets (the soundness contract: static prune
⊆ dynamic sleep-set prune) and a ≥1.5× paths-explored reduction on
the unseq-heavy fragment (it is far larger in practice — a fully
commuting cluster collapses to a single path).

A JSON perf record is printed on the ``-s`` stream and written to
``benchmarks/perf_static_prune.json``.
"""

import json
from pathlib import Path

from repro.pipeline import explore_c

MODEL = "concrete"
MAX_PATHS = 50_000

# Unsequenced stores/loads over disjoint objects: the analysis proves
# every cluster commutes, so the static side never branches.
UNSEQ_HEAVY = {
    "unseq_pair": r'''
int a, b;
int main(void) { (a = 1) + (b = 2); return a + b - 3; }
''',
    "unseq_pair_rw": r'''
int a = 1, b = 2, x, y;
int main(void) { (x = a) + (y = b); return x + y - 3; }
''',
    "unseq_array_disjoint": r'''
int t[4];
int main(void) { (t[0] = 1) + (t[1] = 2); return t[0] + t[1] - 3; }
''',
}

# Two chained unseq pairs: the unpruned DFS space is out of reach
# (it exceeds any practical budget), so this one is measured against
# dynamic POR as the baseline instead of plain DFS.
DEEP = r'''
int t[4];
int main(void) {
    (t[0] = 1) + (t[1] = 2);
    (t[2] = t[0] + 1) + (t[3] = t[1] + 1);
    return t[2] + t[3] - 5;
}
'''

# Conflicting or opaque children: the analysis must *not* collapse
# these — the dynamic machinery still enumerates both orders (or the
# race), and the behaviour sets must stay identical.
CONFLICTING = {
    "unseq_race": r'''
int main(void) { int x; int y = (x = 1) + (x = 2); return 0; }
''',
    "io_interleave": r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); putchar('\n'); return 0; }
''',
}


def _explore(source, static_prune, por=False):
    return explore_c(source, model=MODEL, max_paths=MAX_PATHS,
                     por=por, static_prune=static_prune)


def test_static_prune(benchmark):
    entries = {}
    ratios = []
    for name, source in {**UNSEQ_HEAVY, **CONFLICTING}.items():
        base = _explore(source, static_prune=False)
        if name == "unseq_pair":
            pruned = benchmark.pedantic(
                lambda s=source: _explore(s, True),
                rounds=1, iterations=1)
        else:
            pruned = _explore(source, static_prune=True)
        # Soundness: both passes exhausted, byte-identical behaviours,
        # never more paths with the static prune on.
        assert base.exhausted and pruned.exhausted, name
        assert base.behaviour_keys() == pruned.behaviour_keys(), name
        assert pruned.paths_run <= base.paths_run, name
        ratio = round(base.paths_run / pruned.paths_run, 2)
        entries[name] = {
            "paths_dynamic": base.paths_run,
            "paths_static_prune": pruned.paths_run,
            "behaviours": len(base.behaviour_keys()),
            "ratio": ratio,
        }
        if name in UNSEQ_HEAVY:
            # The headline claim: >=1.5x fewer paths on the
            # unseq-heavy fragment (a commuting cluster collapses to
            # one path, so the real factor is the whole interleaving
            # count).
            assert pruned.paths_run * 1.5 <= base.paths_run, \
                (name, entries)
            ratios.append(ratio)

    # Composition with dynamic POR: the static pre-prune removes the
    # choice points before the sleep sets ever see them, so it must
    # never *add* paths on top of POR either.
    por_rows = {}
    for name, source in {**UNSEQ_HEAVY, "unseq_deep": DEEP}.items():
        por_base = _explore(source, static_prune=False, por=True)
        por_pruned = _explore(source, static_prune=True, por=True)
        assert por_base.behaviour_keys() == \
            por_pruned.behaviour_keys(), name
        assert por_pruned.paths_run <= por_base.paths_run, name
        por_rows[name] = {
            "paths_por": por_base.paths_run,
            "paths_por_static": por_pruned.paths_run,
        }

    record = {
        "benchmark": "static_prune",
        "model": MODEL,
        "max_paths": MAX_PATHS,
        "programs": entries,
        "with_dynamic_por": por_rows,
        "min_unseq_heavy_ratio": min(ratios),
    }
    out_path = Path(__file__).with_name("perf_static_prune.json")
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + json.dumps(record))
    assert record["min_unseq_heavy_ratio"] >= 1.5, record
