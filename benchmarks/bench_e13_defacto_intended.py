"""E13 — §6: running the de facto test suite under the candidate
model.

Paper: "Our de facto tests are much more demanding, and for these our
candidate model, which is still work in progress, currently has the
intended behaviour only for 9." Our candidate model is further along:
we count the tests with the intended verdict under each model and
assert the full-suite pass (and print the per-test table).
"""

from repro.testsuite import TESTS, run_suite


def sweep():
    return {model: run_suite(model)
            for model in ("concrete", "provenance", "strict")}


def test_e13_defacto_suite(benchmark):
    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nde facto suite: {len(TESTS)} executable tests")
    for model, report in reports.items():
        passed = len(report.passed())
        failed = len(report.failed())
        flagged = len(report.flagged())
        print(f"  {model:12s} intended {passed:2d}/{len(TESTS)}  "
              f"(flagged UB on {flagged})")
        assert failed == 0, report.table()
    # The models must disagree on the divergence questions: strict
    # flags strictly more than concrete.
    assert len(reports["strict"].flagged()) > \
        len(reports["concrete"].flagged())
    print("\n" + reports["provenance"].table())
