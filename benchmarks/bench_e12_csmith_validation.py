"""E12 — §6 validation against Csmith-style tests.

Paper: "Of their 561 Csmith tests, Cerberus currently gives the same
result as GCC for 556; the other 5 time-out after 5min"; of 400 larger
tests "Cerberus terminates and agrees with GCC on 316, times out on 56
more, and fails on 6". Shape to reproduce: agreement on essentially
all small tests, and a timeout tail (no disagreements) appearing on
larger ones under a bounded step budget.
"""

from repro.csmith import validate_programs

SMALL_COUNT = 60
LARGE_COUNT = 12


def small_sweep():
    return validate_programs(SMALL_COUNT, size=10, seed_base=10_000)


def large_sweep():
    return validate_programs(LARGE_COUNT, size=50,
                             max_steps=250_000, seed_base=20_000)


def test_e12_small_tests(benchmark):
    report = benchmark.pedantic(small_sweep, rounds=1, iterations=1)
    print(f"\nsmall tests   (paper: 561 tests, 556 agree, 5 "
          f"time out): {report.summary()}")
    assert report.disagree == 0
    assert report.failed == 0
    assert report.agree >= SMALL_COUNT - 3  # near-total agreement


def test_e12_large_tests(benchmark):
    report = benchmark.pedantic(large_sweep, rounds=1, iterations=1)
    print(f"\nlarger tests  (paper: 400 tests, 316 agree / 56 "
          f"timeout / 6 fail): {report.summary()}")
    assert report.disagree == 0
    # The paper's larger-test sweep has a timeout tail; agreements
    # must still dominate.
    assert report.agree >= report.timeout
    assert report.agree + report.timeout + report.failed == \
        LARGE_COUNT
