"""E5 — §2 survey numbers for the questions the paper quotes:
[2/15] (Q48 uninit), [5/15] (Q14 copying), [7/15] (Q25 relational),
[9/15] (Q31 OOB), [11/15] (Q75 char array) — plus the candidate
model's stance on each."""

from repro.survey import SURVEY_15, survey_question_table
from repro.testsuite.questions import QUESTION_BY_ID

PAPER_NUMBERS = {
    "[2/15]": [139, 42, 21, 112],
    "[5/15]": [216, 50, 18, 24],
    "[7/15]": [191, 52, 31, 38, 3],
    "[9/15]": [230, 43, 13, 27],
    "[11/15]": [243],
}


def collect():
    return {ref: [o.count for o in SURVEY_15[ref].options]
            for ref in PAPER_NUMBERS}


def test_e5_survey_questions(benchmark):
    counts = benchmark(collect)
    assert counts == PAPER_NUMBERS
    for ref in sorted(PAPER_NUMBERS):
        q = SURVEY_15[ref]
        stance = QUESTION_BY_ID[q.question_id].stance
        print("\n" + survey_question_table(ref))
        print(f"  candidate model stance: {stance}")
    # The paper's [7/15] extant-code numbers.
    extant = {o.label: o.count for o in SURVEY_15["[7/15]"]
              .extant_options}
    assert extant["yes"] == 101 and extant["no, that would be crazy"] \
        == 50
