"""Incremental re-exploration throughput: cold sweep vs warm re-sweep
of an unchanged exploration corpus.

The exploration-record seam (:mod:`repro.farm.explorestore`) is the
PR-5 scaling lever: a campaign's explorations persist in the artifact
store, so re-sweeping an unchanged corpus replays **zero** paths — it
deserialises the recorded behaviour sets instead of re-running the
state space.  Measured on one reproducible corpus of unseq-heavy
programs swept with ``mode="explore"`` through
:func:`~repro.farm.campaign.sweep_campaign`:

* the **cold** pass explores every program × model live and publishes
  one record per cell (asserted via the campaign report's
  ``metrics["explore"]`` misses/live-path counters);
* the **warm** pass must re-run **zero** paths
  (``live_paths == 0``, ``hit_rate == 1.0``) and be
  at least **3×** faster than the cold pass (asserted; in practice
  the gap is far larger).

A JSON perf record is printed on the ``-s`` stream and written to
``benchmarks/perf_incremental_explore.json``.
"""

import json
import shutil
import tempfile
from pathlib import Path

from repro.farm.campaign import sweep_campaign
from repro.pipeline import clear_compile_cache

# Unseq pairs and triples: wide, quick-to-replay state spaces whose
# exploration dwarfs record deserialisation.
CORPUS = [
    ("pair", "int a, b;\n"
             "int main(void){ (a = 1) + (b = 2); return a + b - 3; }"),
    ("pair_race", "int a;\n"
                  "int main(void){ return (a = 1) + (a = 2); }"),
    ("triple", "int a, b, c;\n"
               "int main(void){ (a = 1) + (b = 2) + (c = 3);"
               " return a + b + c - 6; }"),
    ("pair_call", "int a, b;\n"
                  "int set(int *p, int v){ *p = v; return v; }\n"
                  "int main(void){ set(&a, 1) + set(&b, 2);"
                  " return a + b - 3; }"),
]
MODELS = ["concrete", "provenance"]
MAX_PATHS = 700


def _campaign(store_root):
    clear_compile_cache()   # every pass starts with a cold process cache
    results, campaign = sweep_campaign(
        CORPUS, models=MODELS, jobs=1, mode="explore",
        store=store_root / "artifacts",
        explore_store=store_root / "artifacts",
        max_paths=MAX_PATHS, max_steps=500_000)
    return results, campaign


def test_incremental_explore(benchmark):
    root = Path(tempfile.mkdtemp(prefix="incr-explore-bench-"))
    cells = len(CORPUS) * len(MODELS)
    try:
        cold_results, cold = _campaign(root)
        assert all(r.ok for r in cold_results)
        assert cold.metrics["explore"]["misses"] == cells
        assert cold.metrics["explore"]["puts"] == cells
        cold_paths = cold.metrics["explore"]["live_paths"]
        assert cold_paths > 0

        warm_results, warm = benchmark.pedantic(
            lambda: _campaign(root), rounds=1, iterations=1)

        # Same corpus, same behaviours — just served from records.
        def behaviours(results):
            return [{m: sorted(e.behaviours)
                     for m, e in r.data["explorations"].items()}
                    for r in results]
        assert behaviours(warm_results) == behaviours(cold_results)
        assert [r.data["explorations"][m].paths_run
                for r in warm_results for m in MODELS] == \
               [r.data["explorations"][m].paths_run
                for r in cold_results for m in MODELS]

        # The headline property: a warm re-sweep re-runs ZERO paths
        # (and, with a warm artifact store, re-translates nothing).
        assert warm.metrics["explore"]["live_paths"] == 0
        assert warm.metrics["explore"]["hits"] == cells
        assert warm.metrics["explore"]["hit_rate"] == 1.0
        assert warm.cache["translations"] == 0

        speedup = round(cold.wall_s / warm.wall_s, 2)
        record = {
            "benchmark": "incremental_explore",
            "corpus": {"programs": [name for name, _ in CORPUS],
                       "models": MODELS, "max_paths": MAX_PATHS,
                       "cells": cells},
            "cold_sweep_s": cold.wall_s,
            "warm_sweep_s": warm.wall_s,
            "speedup_warm_vs_cold": speedup,
            "paths_run_cold": cold_paths,
            "paths_run_warm": warm.metrics["explore"]["live_paths"],
            "explore_hits_warm": warm.metrics["explore"]["hits"],
            "explore_hit_rate_warm":
                warm.metrics["explore"]["hit_rate"],
        }
        out_path = Path(__file__).with_name(
            "perf_incremental_explore.json")
        out_path.write_text(json.dumps(record, indent=2) + "\n")
        print("\n" + json.dumps(record))
        assert speedup >= 3.0, record
    finally:
        shutil.rmtree(root, ignore_errors=True)
