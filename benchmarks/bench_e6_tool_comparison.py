"""E6 — §3: the three analysis-tool families give radically different
results on the de facto test suite.

Paper shape: the Clang sanitisers flag surprisingly few tests (all 13
padding tests and 9 unspecified-value tests run silently; only wild
pointers and control flow on unspecified values are caught);
tis-interpreter's tight semantics flags most of the unspecified-value
tests; KCC gives 'Execution failed' for tests of ~20 questions.
"""

from collections import Counter

from repro.tools import PERSONAE, run_persona_suite
from repro.tools.personae import comparison_table


def run_comparison():
    results = {}
    for name in PERSONAE:
        counts = Counter()
        per_test = {}
        for r in run_persona_suite(name):
            kind = ("ok" if r.verdict.startswith("ok")
                    else "flagged" if r.verdict.startswith("ub")
                    else "failed")
            counts[kind] += 1
            per_test[r.test] = kind
        results[name] = (counts, per_test)
    return results


def test_e6_tool_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1,
                                 iterations=1)
    san, san_tests = results["sanitizers"]
    tis, _ = results["tis"]
    kcc, _ = results["kcc"]
    # Sanitisers flag few; tis flags many more; kcc fails on a set.
    assert san["flagged"] < tis["flagged"]
    assert san["failed"] == 0 and tis["failed"] == 0
    assert kcc["failed"] >= 8
    # §3: padding and unspecified-value tests run silently under the
    # sanitisers...
    assert san_tests["padding_persistence"] == "ok"
    assert san_tests["unspec_to_library"] == "ok"       # Q49
    # ...except the two wild-pointer tests and control flow on
    # unspecified values (Q50, which MSan does detect).
    assert san_tests["fabricated_pointer"] == "flagged"
    print("\nverdict profiles (test count by verdict):")
    for name, (counts, _) in results.items():
        print(f"  {name:12s} ok={counts['ok']:3d} "
              f"flagged={counts['flagged']:3d} "
              f"failed={counts['failed']:3d}")
    print("\n" + comparison_table())
