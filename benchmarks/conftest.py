"""Benchmark harness configuration.

Each ``bench_e*.py`` regenerates one table or figure of the paper
(see DESIGN.md's experiment index and EXPERIMENTS.md for the
paper-vs-measured record). Run with::

    pytest benchmarks/ --benchmark-only

The reproduced rows/series are printed on the "-s" stream and asserted
structurally (who wins / what is flagged), not on absolute numbers.
"""
