"""Benchmark harness configuration.

Each ``bench_e*.py`` regenerates one table or figure of the paper
(see DESIGN.md's experiment index and EXPERIMENTS.md for the
paper-vs-measured record). Run with::

    pytest benchmarks/ --benchmark-only

The reproduced rows/series are printed on the "-s" stream and asserted
structurally (who wins / what is flagged), not on absolute numbers.

Big exploration sweeps are marked ``slow_sweep`` (registered below and
in ``setup.cfg``); deselect them with ``-m "not slow_sweep"`` when a
quick benchmark pass is enough.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow_sweep: big state-space exploration sweeps "
        "(deselect with -m \"not slow_sweep\")")
