"""Partial-order reduction vs unpruned DFS on nested-unseq programs.

The explorer's sleep sets exploit the §5.6 action footprints: sibling
``unseq`` orders whose next actions commute (no overlapping footprint
with a write) lead to the same state, so only one representative per
Mazurkiewicz trace is run.  On csmith-style straight-line compute —
expressions full of unsequenced stores to *distinct* objects — the
unpruned DFS enumerates every interleaving while POR collapses each
commuting cluster, a several-fold path reduction with a byte-identical
``distinct()`` behaviour set (the soundness criterion asserted here
program by program).

A JSON perf record is printed on the ``-s`` stream and written to
``benchmarks/perf_explore_por.json``.  The ≥3× reduction is asserted
on the aggregate of the independent-store programs; conflicting
programs (unsequenced races, indeterminately sequenced calls) are
included to pin soundness where POR must *not* over-prune.

``test_explore_por_deep_sweep`` (marked ``slow_sweep``) exhausts a
4-way unseq whose unpruned space is out of reach entirely; deselect
with ``-m "not slow_sweep"``.
"""

import json
from pathlib import Path

import pytest

from repro.pipeline import explore_c

MODEL = "concrete"
MAX_PATHS = 50_000

# Programs whose unseq children touch disjoint objects: POR collapses
# the interleavings, so these carry the ≥3× headline claim.
INDEPENDENT = {
    "unseq_pair": r'''
int a, b;
int main(void) { (a = 1) + (b = 2); return a + b - 3; }
''',
    "unseq_pair_rw": r'''
int a = 1, b = 2, x, y;
int main(void) { (x = a) + (y = b); return x + y - 3; }
''',
    "io_interleave": r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); putchar('\n'); return 0; }
''',
}

# Conflicting accesses: both orders (or the race) must survive POR.
CONFLICTING = {
    "unseq_race": r'''
int main(void) { int x; int y = (x = 1) + (x = 2); return 0; }
''',
    "indet_calls": r'''
int g;
int set(int v) { g = v; return v; }
int main(void) { return set(1) + set(2) - 3; }
''',
}


def _explore(source, por):
    return explore_c(source, model=MODEL, max_paths=MAX_PATHS, por=por)


def test_explore_por(benchmark):
    entries = {}
    ratios = []
    for name, source in {**INDEPENDENT, **CONFLICTING}.items():
        base = _explore(source, por=False)
        if name == "unseq_pair":
            por = benchmark.pedantic(lambda s=source: _explore(s, True),
                                     rounds=1, iterations=1)
        else:
            por = _explore(source, por=True)
        # Soundness: both passes exhausted, byte-identical behaviours.
        assert base.exhausted and por.exhausted, name
        assert base.behaviour_keys() == por.behaviour_keys(), name
        assert por.paths_run <= base.paths_run, name
        ratio = round(base.paths_run / por.paths_run, 2)
        entries[name] = {
            "paths_unpruned_dfs": base.paths_run,
            "paths_por": por.paths_run,
            "pruned_por": por.pruned,
            "behaviours": len(base.behaviour_keys()),
            "ratio": ratio,
        }
        if name in INDEPENDENT:
            # The headline claim: several-fold fewer paths, program
            # by program, on the independent-store benchmarks.
            assert por.paths_run * 3 <= base.paths_run, (name, entries)
            ratios.append(ratio)

    record = {
        "benchmark": "explore_por",
        "model": MODEL,
        "max_paths": MAX_PATHS,
        "programs": entries,
        "min_independent_ratio": min(ratios),
    }
    out_path = Path(__file__).with_name("perf_explore_por.json")
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + json.dumps(record))
    assert record["min_independent_ratio"] >= 3.0, record


@pytest.mark.slow_sweep
def test_explore_por_deep_sweep():
    """Two chained unseq pairs (loads feeding stores): the unpruned
    space is out of reach (it exceeds any practical budget), POR
    exhausts it outright."""
    source = r'''
int t[4];
int main(void) {
    (t[0] = 1) + (t[1] = 2);
    (t[2] = t[0] + 1) + (t[3] = t[1] + 1);
    return t[2] + t[3] - 5;
}
'''
    base = explore_c(source, model=MODEL, max_paths=5_000, por=False)
    por = explore_c(source, model=MODEL, max_paths=60_000, por=True)
    assert not base.exhausted          # budget-bound: space too large
    assert por.exhausted               # POR finishes the whole space
    assert base.behaviour_keys() == por.behaviour_keys()
