"""Warm-store 5-model sweep over the widened fragment (bit-fields and
VLAs).

The fragment widening is only useful at farm scale if the new
constructs ride the compile-once / artifact-store seams like the rest
of the language: one front-end translation per implementation
environment, pickled `CompiledProgram` artifacts reloaded across
process-cache clears, and verdict agreement across all five registered
memory object models.  This benchmark sweeps a small corpus of
bit-field/VLA programs twice against one persistent store — cold, then
warm after clearing the in-memory cache — asserts the warm pass
performs **zero** front-end translations with identical verdicts, and
records a JSON perf record in ``benchmarks/perf_fragment_sweep.json``.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.farm.store import ArtifactStore
from repro.pipeline import (
    MODELS, clear_compile_cache, compile_cache_stats, run_many,
    set_artifact_store,
)

PROGRAMS = {
    "bitfield_pack": r'''
#include <stdio.h>
struct s { char c; unsigned lo : 4; unsigned hi : 12; int n : 9; };
int main(void) {
    struct s s;
    s.c = 'x'; s.lo = 9; s.hi = 3000; s.n = -200;
    s.hi += 77;
    printf("%u %u %d %u\n", s.lo, s.hi, s.n,
           (unsigned)sizeof(struct s));
    return s.lo;
}''',
    "bitfield_union": r'''
#include <stdio.h>
union u { unsigned word; unsigned lo : 8; };
int main(void) {
    union u u;
    u.word = 0x1234u;
    u.lo = 0xAB;
    printf("%x %u\n", u.word, u.lo);
    return 0;
}''',
    "vla_sum": r'''
#include <stdio.h>
int main(void) {
    int n = 16;
    int a[n];
    int i, s = 0;
    for (i = 0; i < n; i++) a[i] = i;
    for (i = 0; i < n; i++) s += a[i];
    printf("%d %u\n", s, (unsigned)sizeof(a));
    return s & 0x7f;
}''',
    "vla_matrix": r'''
int main(void) {
    int rows = 3;
    int m[rows][4];
    int i, j, s = 0;
    for (i = 0; i < rows; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 4 + j;
    for (i = 0; i < rows; i++)
        for (j = 0; j < 4; j++)
            s += m[i][j];
    return s;
}''',
    "vla_negative_verdict": r'''
int main(void) { int n = -3; int a[n]; return 0; }''',
    "bitfield_vla_mix": r'''
#include <stdio.h>
struct flags { unsigned ready : 1; unsigned retries : 3; };
int main(void) {
    int n = 6;
    int fib[n];
    struct flags f;
    int i;
    fib[0] = 0; fib[1] = 1;
    for (i = 2; i < n; i++) fib[i] = fib[i - 1] + fib[i - 2];
    f.ready = 1; f.retries = 7;
    printf("%d %u\n", fib[n - 1], f.retries);
    return fib[n - 1];
}''',
}


def _sweep():
    clear_compile_cache()
    verdicts = {}
    for name, src in PROGRAMS.items():
        outcomes = run_many(src, name=name)
        verdicts[name] = {
            model: (o.status, o.exit_code,
                    o.ub.name if o.ub else None, o.stdout)
            for model, o in outcomes.items()
        }
    return verdicts, compile_cache_stats()


def test_fragment_sweep():
    root = Path(tempfile.mkdtemp(prefix="fragment-sweep-"))
    store = ArtifactStore(root / "store")
    previous = set_artifact_store(store)
    try:
        t0 = time.perf_counter()
        cold, cold_stats = _sweep()
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm, warm_stats = _sweep()
        warm_s = time.perf_counter() - t0

        # Same corpus, same verdicts, and the warm pass replayed
        # pickled artifacts without running the front end once.
        assert warm == cold
        assert warm_stats["translations"] == 0, warm_stats
        assert warm_stats["store_hits"] == len(PROGRAMS) * \
            len({"CHERI128", "LP64"}), warm_stats

        # The five models must agree wherever the semantics forces
        # agreement: every deterministic program here.
        for name, per_model in cold.items():
            assert len(per_model) == len(MODELS), name
            assert len(set(per_model.values())) == 1, (name, per_model)
        neg = cold["vla_negative_verdict"]["concrete"]
        assert neg[0] == "ub" and neg[2] == "VLA_size_not_positive"

        record = {
            "benchmark": "fragment_sweep",
            "corpus": sorted(PROGRAMS),
            "models": sorted(MODELS),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "cold_translations": cold_stats["translations"],
            "warm_translations": warm_stats["translations"],
            "warm_store_hits": warm_stats["store_hits"],
            "speedup_warm_vs_cold": round(cold_s / warm_s, 2),
        }
        out_path = Path(__file__).with_name("perf_fragment_sweep.json")
        out_path.write_text(json.dumps(record, indent=2) + "\n")
        print("\n" + json.dumps(record))
    finally:
        set_artifact_store(previous)
        clear_compile_cache()
        shutil.rmtree(root, ignore_errors=True)
