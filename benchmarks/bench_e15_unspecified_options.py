"""E15 — §2.4/§2.5: the unspecified-value and padding semantic
options, side by side.

Uninitialised reads (§2.4): (1) UB — strict/tis; (2/3) unstable /
unpredictable — the candidate model's daemonic unspecified values;
(4) arbitrary-but-stable — MSVC-ish, our concrete model.

Padding after a member store (§2.5): keep (option 4) / write
unspecified (option 2) / write zeros (option 3), all observable.
"""

from repro.memory.base import MemoryOptions
from repro.pipeline import run_c

UNINIT = r'''
#include <stdio.h>
int main(void) {
    unsigned int x;
    unsigned int a = x;
    unsigned int b = x;
    printf("%d\n", a == b);
    return 0;
}
'''

PADDING = r'''
#include <stdio.h>
#include <string.h>
struct padded { char c; int i; };
int main(void) {
    struct padded s;
    memset(&s, 0, sizeof(s));
    s.c = 'x';
    unsigned char *bytes = (unsigned char *)&s;
    printf("%d\n", bytes[1]);
    return 0;
}
'''


def run_matrix():
    uninit = {
        "(1) UB": run_c(UNINIT, model="strict"),
        "(2/3) unspecified": run_c(UNINIT, model="provenance"),
        "(4) stable": run_c(UNINIT, model="concrete"),
    }
    padding = {
        "keep (option 4)": run_c(PADDING, model="concrete"),
        "unspec (option 2)": run_c(
            PADDING, model="concrete",
            options=MemoryOptions(uninit_read="unspecified",
                                  padding_on_member_store="unspec")),
        "zero (option 3)": run_c(
            PADDING, model="concrete",
            options=MemoryOptions(uninit_read="stable",
                                  padding_on_member_store="zero")),
    }
    return uninit, padding


def test_e15_option_matrix(benchmark):
    uninit, padding = benchmark.pedantic(run_matrix, rounds=1,
                                         iterations=1)
    assert uninit["(1) UB"].is_ub
    assert uninit["(1) UB"].ub.name == "Read_uninitialised"
    assert uninit["(2/3) unspecified"].is_ub  # comparison on unspec
    assert uninit["(4) stable"].stdout == "1\n"
    assert padding["keep (option 4)"].stdout == "0\n"
    assert padding["unspec (option 2)"].stdout == "<unspec>\n"
    assert padding["zero (option 3)"].stdout == "0\n"
    print("\nuninitialised read (survey [2/15] was bimodal "
          "139 UB / 112 stable):")
    for option, out in uninit.items():
        print(f"  {option:20s} {out.summary()}")
    print("padding byte after member store ([1/15] mixed):")
    for option, out in padding.items():
        print(f"  {option:20s} {out.summary()}")
