"""E7 — §4: the CHERI C findings.

* pointer == compared addresses only (fixed by CExEq);
* (i & 3u) == 0u evaluates false (offset masking on the capability);
* non-intptr_t integers carry no provenance; arithmetic provenance is
  inherited from the left-hand side only;
* capability bounds are enforced at access time (transient OOB fine).
"""

from repro.pipeline import run_c
from repro.testsuite import TESTS

EQ_SRC = TESTS["provenance_equality_gcc"].source

MASK_SRC = r'''
#include <stdio.h>
#include <stdint.h>
int main(void) {
  int x = 1;
  uintptr_t i = (uintptr_t)&x;
  if ((i & 3u) == 0u) printf("aligned\n");
  else printf("not-aligned\n");
  return 0;
}
'''


def run_findings():
    return {
        "eq_prefix": run_c(EQ_SRC, model="cheri"),
        "eq_fixed": run_c(EQ_SRC, model="cheri", exact_equality=True),
        "mask_lp64": run_c(MASK_SRC, model="provenance"),
        "mask_cheri": run_c(MASK_SRC, model="cheri"),
        "oob": run_c(TESTS["oob_transient"].source, model="cheri"),
    }


def test_e7_cheri_findings(benchmark):
    r = benchmark.pedantic(run_findings, rounds=1, iterations=1)
    assert r["eq_prefix"].stdout == "eq\n"      # the equality bug
    assert r["eq_fixed"].stdout == "neq\n"      # CExEq fix
    assert r["mask_lp64"].stdout == "aligned\n"
    assert r["mask_cheri"].stdout == "not-aligned\n"  # the mask bug
    assert r["oob"].status == "done"            # access-time bounds
    print("\nCHERI C findings (paper §4):")
    print(f"  pointer == (pre-fix):  {r['eq_prefix'].stdout.strip()}"
          f"   (fixed: {r['eq_fixed'].stdout.strip()})")
    print(f"  (i & 3u) == 0u:  LP64 {r['mask_lp64'].stdout.strip()}"
          f" / CHERI {r['mask_cheri'].stdout.strip()}")
    print(f"  transient OOB + in-bounds deref: "
          f"{r['oob'].summary()}")
