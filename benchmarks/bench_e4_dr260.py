"""E4 — §2.1 the DR260 example ``provenance_basic_global_yx.c``.

Paper: "In a concrete semantics we would expect to see
``x=1 y=11 *p=11 *q=11``, but GCC produces ``x=1 y=2 *p=11 *q=2``";
the provenance semantics makes the store undefined behaviour, which is
what licenses GCC's constant propagation.
"""

from repro.pipeline import run_c
from repro.testsuite import TESTS

SRC = TESTS["provenance_basic_global_yx"].source


def run_all_models():
    return {model: run_c(SRC, model=model)
            for model in ("concrete", "provenance", "strict")}


def test_e4_dr260(benchmark):
    outcomes = benchmark(run_all_models)
    concrete = outcomes["concrete"]
    # The concrete semantics: the store lands in y.
    assert concrete.status == "done"
    assert "x=1 y=11 *p=11 *q=11" in concrete.stdout
    # The candidate de facto model: the DR260 licence makes it UB,
    # (vacuously) justifying GCC's x=1 y=2 output.
    prov = outcomes["provenance"]
    assert prov.is_ub and prov.ub.name == "Access_wrong_provenance"
    assert outcomes["strict"].is_ub
    print("\nDR260 example (provenance_basic_global_yx.c):")
    for model, out in outcomes.items():
        print(f"  {model:12s} {out.summary()}")
    print("  paper: concrete = x=1 y=11 *p=11 *q=11; "
          "GCC = x=1 y=2 *p=11 *q=2 (justified by the UB above)")
