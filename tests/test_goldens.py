"""Golden-verdict conformance: the checked-in behaviour sets in
``tests/goldens/verdicts.json`` are the paper's reproduced answers —
every test program's distinct behaviours (UB name *and* site) under
every memory object model.  Live runs must match them cell for cell;
deliberate semantics changes re-pin with
``python -m repro.testsuite --update-goldens``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pipeline import MODELS
from repro.testsuite.goldens import (
    GOLDEN_SCHEMA, compute_verdicts, diff_goldens, load_goldens,
    update_goldens,
)
from repro.testsuite.programs import TESTS

GOLDEN_PATH = Path(__file__).parent / "goldens" / "verdicts.json"


@pytest.fixture(scope="module")
def goldens():
    return load_goldens(GOLDEN_PATH)


class TestGoldenFile:
    def test_checked_in_and_complete(self, goldens):
        """The golden document pins every test × every registered
        model — a new test or model cannot land unpinned."""
        assert goldens["schema"] == GOLDEN_SCHEMA
        assert sorted(goldens["models"]) == sorted(MODELS)
        assert sorted(goldens["verdicts"]) == sorted(TESTS)
        for name, cells in goldens["verdicts"].items():
            assert sorted(cells) == sorted(MODELS), name
            for model, behaviours in cells.items():
                assert behaviours, (name, model)  # never empty

    def test_ub_cells_pin_the_site(self, goldens):
        """UB golden entries carry the source site, not just the
        name — the same UB at two program points is two behaviours."""
        ub_lines = [b
                    for cells in goldens["verdicts"].values()
                    for behaviours in cells.values()
                    for b in behaviours if b.startswith("UB[")]
        assert ub_lines, "suite must pin some UB behaviour"
        sited = [b for b in ub_lines if " @ " in b]
        assert len(sited) >= len(ub_lines) * 0.9, \
            "UB goldens lost their source sites"


class TestConformance:
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_live_verdicts_match_goldens(self, goldens, model):
        live = compute_verdicts(models=[model],
                                max_paths=goldens["max_paths"],
                                max_steps=goldens["max_steps"])
        lines = diff_goldens(goldens, live)
        assert not lines, "\n".join(lines)


class TestRegeneration:
    def test_update_goldens_roundtrip(self, tmp_path):
        path = update_goldens(tmp_path / "v.json",
                              models=["concrete", "provenance"],
                              names=["provenance_basic_global_yx"])
        doc = load_goldens(path)
        assert doc["models"] == ["concrete", "provenance"]
        live = compute_verdicts(models=["concrete", "provenance"],
                                names=["provenance_basic_global_yx"])
        assert diff_goldens(doc, live) == []

    def test_subset_update_merges_into_existing(self, tmp_path):
        """A restricted --update-goldens must not discard the pinned
        cells outside the subset."""
        path = update_goldens(tmp_path / "v.json",
                              models=["concrete", "provenance"],
                              names=["provenance_basic_global_yx",
                                     "provenance_equality_adjacent"])
        before = load_goldens(path)["verdicts"]
        update_goldens(path, models=["concrete"],
                       names=["provenance_basic_global_yx"])
        after = load_goldens(path)["verdicts"]
        assert after == before      # recomputed cells were identical
        assert after["provenance_equality_adjacent"]["provenance"]

    def test_cli_check_subset(self, tmp_path):
        """``python -m repro.testsuite`` round-trips: regenerate a
        subset golden, then check it, in subprocesses."""
        path = tmp_path / "subset.json"
        src = str(Path(__file__).resolve().parents[1] / "src")
        base = [sys.executable, "-m", "repro.testsuite",
                "--path", str(path),
                "--models", "concrete",
                "--tests", "provenance_equality_adjacent"]
        import os
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        gen = subprocess.run(base + ["--update-goldens"],
                             capture_output=True, text=True, env=env)
        assert gen.returncode == 0, gen.stderr
        check = subprocess.run(base, capture_output=True, text=True,
                               env=env)
        assert check.returncode == 0, check.stdout + check.stderr
        assert "conform" in check.stdout

    def test_divergence_is_reported(self, goldens, tmp_path):
        """A flipped golden cell must fail the diff with a readable
        message naming the test, the model, and both sides."""
        doc = json.loads(json.dumps(goldens))  # deep copy
        name = sorted(doc["verdicts"])[0]
        doc["verdicts"][name]["concrete"] = ["exit=99 stdout='nope'"]
        live = compute_verdicts(models=["concrete"], names=[name],
                                max_paths=doc["max_paths"],
                                max_steps=doc["max_steps"])
        lines = diff_goldens(doc, live)
        assert len(lines) == 1
        assert name in lines[0] and "concrete" in lines[0]
        assert "golden:" in lines[0] and "live:" in lines[0]
