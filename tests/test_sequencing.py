"""Evaluation-order semantics (ISO §6.5p2; paper §5.6): unsequenced
races, indeterminate sequencing of function calls, atomicity of
postfix increment."""

import pytest


class TestUnsequencedRaces:
    def test_two_assignments(self, expect_ub):
        expect_ub("int main(void){ int x; "
                  "int y = (x = 1) + (x = 2); return y; }",
                  "Unsequenced_race")

    def test_write_read_race(self, expect_ub):
        expect_ub("int main(void){ int x = 0; "
                  "int y = (x = 1) + x; return y; }",
                  "Unsequenced_race")

    def test_x_equals_x_plus_plus(self, expect_ub):
        expect_ub("int main(void){ int x = 0; x = x++; return x; }",
                  "Unsequenced_race")

    def test_i_equals_i_plus_plus_times(self, expect_ub):
        expect_ub("int main(void){ int i = 0; int a[3] = {0,0,0}; "
                  "a[i] = i++; return 0; }", "Unsequenced_race")

    def test_reads_do_not_race(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 3;
    int y = x + x * x;
    printf("%d\n", y);
    return 0;
}''')
        assert out.stdout == "12\n"

    def test_distinct_objects_no_race(self, run_ok):
        run_ok("int main(void){ int x = 0, y = 0; "
               "int z = (x = 1) + (y = 2); return z; }")

    def test_sequenced_by_logical_and(self, run_ok):
        # && has a sequence point: no race.
        run_ok("int main(void){ int x = 0; "
               "int y = (x = 1) && (x = 2); return y; }")

    def test_sequenced_by_comma(self, run_ok):
        run_ok("int main(void){ int x = 0; "
               "int y = ((x = 1), (x = 2)); return y + x; }")

    def test_assignment_into_self_ok(self, run_ok):
        # x = x + 1 is fine: the read is part of the value computation.
        out = run_ok(r'''
#include <stdio.h>
int main(void){ int x = 1; x = x + 1; printf("%d\n", x); return 0; }
''')
        assert out.stdout == "2\n"

    def test_function_calls_are_indeterminately_sequenced(self, run_ok):
        # Two calls both writing a global: NOT a race (indeterminately
        # sequenced, §5.6 point 6).
        run_ok(r'''
int g;
int set(int v) { g = v; return v; }
int main(void) { return set(1) + set(2) - 3; }''')

    def test_call_vs_operand_access_not_race(self, run_ok):
        # The paper's example shape: x++ + f(...) where f touches x.
        run_ok(r'''
int x = 1;
int f(void) { return x; }
int main(void) { int w = x++ + f(); return w - 3 >= -2 ? 0 : 1; }''')


class TestEvaluationOrderNondeterminism:
    def test_both_call_orders_observable(self, explore):
        res = explore(r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); putchar('\n'); return 0; }''',
                      max_paths=100)
        outs = {o.stdout for o in res.outcomes
                if o.status in ("done", "exit")}
        assert outs == {"ab\n", "ba\n"}

    def test_argument_order_nondeterministic(self, explore):
        res = explore(r'''
#include <stdio.h>
int pr(int c) { putchar(c); return c; }
int two(int a, int b) { return 0; }
int main(void) { two(pr('x'), pr('y')); putchar('\n'); return 0; }''',
                      max_paths=100)
        outs = {o.stdout for o in res.outcomes
                if o.status in ("done", "exit")}
        assert outs == {"xy\n", "yx\n"}

    def test_deterministic_program_single_behaviour(self, explore):
        res = explore(r'''
#include <stdio.h>
int main(void) { printf("only\n"); return 0; }''', max_paths=50)
        assert len(res.distinct()) == 1
        assert res.exhausted

    def test_paper_sequencing_example(self, explore):
        # w = x++ + f(z,2); — §5.6's worked example. Deterministic
        # result despite internal nondeterminism.
        res = explore(r'''
#include <stdio.h>
int f(int a, int b) { return a + b; }
int main(void) {
    int w, x = 1, z = 10;
    w = x++ + f(z, 2);
    printf("w=%d x=%d\n", w, x);
    return 0;
}''', max_paths=200)
        outs = {o.stdout for o in res.outcomes}
        assert outs == {"w=13 x=2\n"}


class TestSequencePoints:
    def test_full_expression_boundary(self, run_ok):
        # Separate statements never race.
        run_ok("int main(void){ int x = 0; x = 1; x = 2; return x; }")

    def test_initialiser_order_in_one_declaration(self, run_ok):
        # Initialisers of distinct declarators are sequenced.
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 1, y = x + 1, z = y + 1;
    printf("%d %d %d\n", x, y, z);
    return 0;
}''')
        assert out.stdout == "1 2 3\n"

    def test_condition_sequenced_before_branch(self, run_ok):
        run_ok("int main(void){ int x = 0; "
               "if (x == 0) x = 1; return x - 1; }")
