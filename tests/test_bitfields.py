"""Bit-field layout and semantics (§6.7.2.1) across the memory object
models.

Layout golden tables are pinned per implementation environment
(sizeof / member positions / padding bytes for packing, straddling and
zero-width cases); the dynamic tests check that member stores preserve
adjacent bits of the storage unit, that signed fields truncate and
sign-extend like GCC/Clang, and that verdicts agree across all five
registered models where they must.
"""

import pytest

from repro.ctypes.implementation import CHERI128, ILP32, LP64
from repro.ctypes.types import StructRef
from repro.errors import DesugarError
from repro.pipeline import MODELS, compile_c, run_c, run_many


def _layout(src, impl, tag_name):
    """Compile a struct definition and return (layout, tags)."""
    program = compile_c(src + "\nint main(void) { return 0; }", impl)
    tags = program.ail.tags
    tag = next(t for t in tags.all_tags() if t.startswith(tag_name + "#"))
    return impl.layout(StructRef(tag), tags), tags, tag


def _fields(lay):
    return {f.name: (f.offset, f.bit_offset, f.bit_width)
            for f in lay.fields}


class TestLayoutGoldenTables:
    """sizeof / member positions per implementation environment."""

    def test_char_then_packed_int_bitfields(self):
        src = "struct s { char c; int f : 3; int g : 5; };"
        for impl in (LP64, ILP32, CHERI128):
            lay, _, _ = _layout(src, impl, "s")
            assert lay.size == 4, impl.name
            assert lay.align == 4, impl.name
            assert _fields(lay) == {"c": (0, None, None),
                                    "f": (1, 0, 3),
                                    "g": (1, 3, 5)}, impl.name

    def test_straddling_field_starts_a_new_unit(self):
        src = "struct s { int a : 30; int b : 4; };"
        for impl in (LP64, ILP32, CHERI128):
            lay, _, _ = _layout(src, impl, "s")
            assert lay.size == 8, impl.name
            assert _fields(lay) == {"a": (0, 0, 30),
                                    "b": (4, 0, 4)}, impl.name

    def test_zero_width_closes_the_unit(self):
        src = "struct s { unsigned a : 3; unsigned : 0; " \
              "unsigned b : 3; };"
        for impl in (LP64, ILP32, CHERI128):
            lay, _, _ = _layout(src, impl, "s")
            assert lay.size == 8, impl.name
            assert _fields(lay) == {"a": (0, 0, 3),
                                    "b": (4, 0, 3)}, impl.name

    def test_short_allocation_unit(self):
        src = "struct s { char c; short f : 10; };"
        for impl in (LP64, ILP32, CHERI128):
            lay, _, _ = _layout(src, impl, "s")
            assert lay.size == 4, impl.name
            assert lay.align == 2, impl.name
            assert _fields(lay) == {"c": (0, None, None),
                                    "f": (2, 0, 10)}, impl.name

    def test_anonymous_bitfield_reserves_bits(self):
        src = "struct s { unsigned a : 4; unsigned : 4; " \
              "unsigned b : 4; };"
        lay, _, _ = _layout(src, LP64, "s")
        assert lay.size == 4
        assert _fields(lay) == {"a": (0, 0, 4), "b": (1, 0, 4)}

    def test_long_bitfield_diverges_per_environment(self):
        # unsigned long is 8 bytes under LP64/CHERI128 but 4 under
        # ILP32: a 40-bit field fits the former and is a constraint
        # violation under the latter.
        src = "struct s { unsigned long l : 40; char c; };"
        for impl in (LP64, CHERI128):
            lay, _, _ = _layout(src, impl, "s")
            assert lay.size == 8, impl.name
            assert _fields(lay) == {"l": (0, 0, 40),
                                    "c": (5, None, None)}, impl.name
        with pytest.raises(DesugarError, match="exceeds the width"):
            _layout(src, ILP32, "s")

    def test_bool_bitfield(self):
        src = "struct s { _Bool f : 1; _Bool g : 1; };"
        lay, _, _ = _layout(src, LP64, "s")
        assert lay.size == 1
        assert _fields(lay) == {"f": (0, 0, 1), "g": (0, 1, 1)}

    def test_union_bitfield_layout(self):
        src = "union u { unsigned word; unsigned lo : 4; };"
        program = compile_c(src + "\nint main(void) { return 0; }",
                            LP64)
        tags = program.ail.tags
        tag = next(t for t in tags.all_tags() if t.startswith("u#"))
        from repro.ctypes.types import UnionRef
        lay = LP64.layout(UnionRef(tag), tags)
        assert lay.size == 4
        assert _fields(lay) == {"word": (0, None, None),
                                "lo": (0, 0, 4)}

    def test_padding_bytes_cover_partial_units(self):
        src = "struct s { char c; int f : 3; int g : 5; };"
        lay, tags, tag = _layout(src, LP64, "s")
        # Bytes 0 (c) and 1 (f,g bits) are used; 2 and 3 are padding.
        assert LP64.padding_bytes(StructRef(tag), tags) == [2, 3]


class TestBitfieldSemantics:
    def test_stores_preserve_adjacent_bits(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct s { unsigned a : 4; unsigned b : 4; };
int main(void) {
    struct s s;
    s.a = 0xF; s.b = 0x3;
    unsigned char *p = (unsigned char *)&s;
    printf("%x %u %u\n", p[0], s.a, s.b);
    s.a = 0;                       /* must leave b alone */
    printf("%x %u %u\n", p[0], s.a, s.b);
    return 0;
}''')
        assert out.stdout == "3f 15 3\n30 0 3\n"

    def test_signed_field_truncates_and_sign_extends(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct s { int f : 3; };
int main(void) {
    struct s s;
    s.f = 7;                       /* 3-bit signed: 111 -> -1 */
    printf("%d ", s.f);
    s.f = -4;                      /* representable: 100 */
    printf("%d ", s.f);
    printf("%d\n", s.f = 9);       /* value of assignment: 9 -> 1 */
    return 0;
}''')
        assert out.stdout == "-1 -4 1\n"

    def test_compound_assignment_and_increment(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct s { unsigned f : 3; int g : 4; };
int main(void) {
    struct s s;
    s.f = 6; s.g = 0;
    s.f += 3;                      /* 9 -> 1 mod 8 */
    printf("%u ", s.f);
    s.f++; s.f++;
    printf("%u ", s.f);
    printf("%u ", s.f--);          /* postfix: old value */
    printf("%u ", ++s.f);
    s.g = 7; s.g++;                /* signed 4-bit: 8 -> -8 */
    printf("%d\n", s.g);
    return 0;
}''')
        assert out.stdout == "1 3 3 3 -8\n"

    def test_whole_struct_copy_carries_bitfields(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct s { unsigned a : 5; unsigned b : 11; int c; };
int main(void) {
    struct s x, y;
    x.a = 21; x.b = 1234; x.c = -9;
    y = x;
    printf("%u %u %d\n", y.a, y.b, y.c);
    return 0;
}''')
        assert out.stdout == "21 1234 -9\n"

    def test_initialisers_and_statics(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct s { unsigned a : 4; unsigned : 4; unsigned b : 4; };
static struct s g = { 5, 9 };      /* unnamed field is skipped */
int main(void) {
    struct s l = { .b = 7 };
    printf("%u %u %u %u\n", g.a, g.b, l.a, l.b);
    return 0;
}''')
        assert out.stdout == "5 9 0 7\n"

    def test_union_bitfield_views_word(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
union u { unsigned word; unsigned lo : 4; };
int main(void) {
    union u u;
    u.word = 0xABu;
    printf("%u ", u.lo);
    u.lo = 0x5;                    /* RMW: upper bits preserved */
    printf("%x\n", u.word);
    return 0;
}''')
        assert out.stdout == "11 a5\n"

    def test_bool_bitfield_normalises(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct s { _Bool f : 1; };
int main(void) {
    struct s s;
    s.f = 2;                       /* _Bool conversion -> 1 */
    printf("%d\n", s.f);
    return 0;
}''')
        assert out.stdout == "1\n"

    def test_uninitialised_bitfield_read_is_ub_under_strict(
            self, expect_ub):
        expect_ub(r'''
struct s { int f : 3; };
int main(void) { struct s s; return s.f; }''',
                  "Read_uninitialised", model="strict")


class TestFiveModelAgreement:
    SRC = r'''
#include <stdio.h>
struct s { char tag; unsigned lo : 4; unsigned hi : 12; int n : 9; };
int main(void) {
    struct s s;
    s.tag = 'x'; s.lo = 9; s.hi = 3000; s.n = -200;
    s.hi += 100;
    unsigned char *p = (unsigned char *)&s;
    printf("%c %u %u %d %x %x\n",
           s.tag, s.lo, s.hi, s.n, p[1], p[2]);
    return (int)sizeof(struct s);
}'''

    def test_run_many_agrees_on_bitfield_program(self):
        outcomes = run_many(self.SRC)
        assert set(outcomes) == set(MODELS)
        stdouts = {m: o.stdout for m, o in outcomes.items()}
        exits = {m: o.exit_code for m, o in outcomes.items()}
        statuses = {m: o.status for m, o in outcomes.items()}
        assert set(statuses.values()) == {"done"}, statuses
        assert len(set(stdouts.values())) == 1, stdouts
        assert len(set(exits.values())) == 1, exits
        # and the shared verdict matches the hand-computed golden run:
        # lo|hi pack after the tag byte (0xc9, 0xc1), the straddling
        # 9-bit n opens a fresh unit, so sizeof grows to 8.
        assert outcomes["concrete"].exit_code == 8
        assert outcomes["concrete"].stdout == "x 9 3100 -200 c9 c1\n"
