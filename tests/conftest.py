"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.pipeline import compile_c, explore_c, run_c


@pytest.fixture
def run():
    """Run a C program on a model; returns the Outcome."""

    def _run(source, model="provenance", **kw):
        return run_c(source, model=model, **kw)

    return _run


@pytest.fixture
def run_ok():
    """Run a C program expecting normal termination; returns stdout."""

    def _run(source, model="provenance", **kw):
        out = run_c(source, model=model, **kw)
        assert out.status in ("done", "exit"), \
            f"expected success, got {out.status}: {out.ub} " \
            f"{out.ub_detail} {out.error}"
        return out

    return _run


@pytest.fixture
def expect_ub():
    """Run a C program expecting a specific UB name."""

    def _run(source, ub_name=None, model="provenance", **kw):
        out = run_c(source, model=model, **kw)
        assert out.status == "ub", \
            f"expected UB, got {out.status} (stdout={out.stdout!r})"
        if ub_name is not None:
            assert out.ub is not None and out.ub.name == ub_name, \
                f"expected {ub_name}, got {out.ub}"
        return out

    return _run


@pytest.fixture
def explore():
    def _explore(source, model="provenance", **kw):
        return explore_c(source, model=model, **kw)

    return _explore


@pytest.fixture
def compile_only():
    def _compile(source, **kw):
        return compile_c(source, **kw)

    return _compile
