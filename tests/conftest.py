"""Shared helpers for the test suite."""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile

import pytest

from repro.pipeline import compile_c, explore_c, run_c


class FarmDaemon:
    """One real ``cerberus-py serve`` subprocess on a temp unix socket
    — the E2E server harness (tests/test_farm_server.py and
    tests/test_server_conformance.py drive lifecycle, dedup, quota,
    malformed-input, and kill-9/restart scenarios through it).

    The daemon runs in its own session (process group) so
    :meth:`kill9` can take the pre-forked pool workers down with it —
    exactly what a machine crash does to a real deployment.  Socket
    paths live under a short ``/tmp`` dir (``AF_UNIX`` paths cap at
    ~104 bytes; deep pytest tmp paths overflow it)."""

    def __init__(self, workers: int = 1, store: str = None,
                 socket_path: str = None, extra_args=(),
                 boot_timeout: float = 60.0):
        self.tmp = tempfile.mkdtemp(prefix="cerb-srv-")
        self.socket_path = socket_path or os.path.join(self.tmp,
                                                       "d.sock")
        self.store = store or os.path.join(self.tmp, "store")
        self.stderr_path = os.path.join(self.tmp, "stderr.log")
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(__import__("repro").__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep \
            + env.get("PYTHONPATH", "")
        with open(self.stderr_path, "ab") as errf:
            self.proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--socket", self.socket_path, "--store", self.store,
                 "--workers", str(workers), *extra_args],
                env=env, stdout=subprocess.DEVNULL, stderr=errf,
                start_new_session=True)
        try:
            self.client().wait_healthy(boot_timeout)
        except Exception:
            self.cleanup(remove_tmp=False)
            raise RuntimeError(
                f"farm daemon failed to boot:\n{self.stderr()}")

    def client(self, **kw):
        from repro.farm.client import FarmClient
        return FarmClient(self.socket_path, **kw)

    def stderr(self) -> str:
        with open(self.stderr_path) as f:
            return f.read()

    def kill9(self) -> None:
        """SIGKILL the whole daemon process group — no drain, no
        persistence flush beyond what already hit the store."""
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=30)

    def terminate(self) -> int:
        """SIGTERM (graceful drain); returns the exit code."""
        try:
            os.killpg(self.proc.pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
        return self.proc.wait(timeout=60)

    def cleanup(self, remove_tmp: bool = True) -> None:
        if self.proc.poll() is None:
            self.kill9()
        if remove_tmp:
            shutil.rmtree(self.tmp, ignore_errors=True)


@pytest.fixture
def farm_daemon():
    """Factory fixture: boot real farm daemons; every one (and its
    worker process group) is torn down at test end no matter how the
    test exits."""
    daemons = []

    def _boot(**kw):
        daemon = FarmDaemon(**kw)
        daemons.append(daemon)
        return daemon

    yield _boot
    for daemon in daemons:
        daemon.cleanup()


@pytest.fixture
def run():
    """Run a C program on a model; returns the Outcome."""

    def _run(source, model="provenance", **kw):
        return run_c(source, model=model, **kw)

    return _run


@pytest.fixture
def run_ok():
    """Run a C program expecting normal termination; returns stdout."""

    def _run(source, model="provenance", **kw):
        out = run_c(source, model=model, **kw)
        assert out.status in ("done", "exit"), \
            f"expected success, got {out.status}: {out.ub} " \
            f"{out.ub_detail} {out.error}"
        return out

    return _run


@pytest.fixture
def expect_ub():
    """Run a C program expecting a specific UB name."""

    def _run(source, ub_name=None, model="provenance", **kw):
        out = run_c(source, model=model, **kw)
        assert out.status == "ub", \
            f"expected UB, got {out.status} (stdout={out.stdout!r})"
        if ub_name is not None:
            assert out.ub is not None and out.ub.name == ub_name, \
                f"expected {ub_name}, got {out.ub}"
        return out

    return _run


@pytest.fixture
def explore():
    def _explore(source, model="provenance", **kw):
        return explore_c(source, model=model, **kw)

    return _explore


@pytest.fixture
def compile_only():
    def _compile(source, **kw):
        return compile_c(source, **kw)

    return _compile
