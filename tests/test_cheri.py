"""CHERI C capability model tests (paper §4)."""

import pytest

from repro.ctypes.types import Integer, IntKind
from repro.memory.cheri import Capability, CheriModel
from repro.memory.values import IntegerValue
from repro.memory.base import MemoryError_

_INT = Integer(IntKind.INT)


class TestCapabilities:
    def test_create_attaches_capability(self):
        m = CheriModel()
        p = m.create(_INT, 4, "x", "static")
        assert isinstance(p.meta, Capability)
        assert p.meta.base == p.addr
        assert p.meta.length == 4
        assert p.meta.tag

    def test_shift_moves_offset(self):
        m = CheriModel()
        p = m.alloc_region(40, 16)
        q = m.array_shift(p, _INT, IntegerValue(3))
        assert q.meta.offset == 12
        assert q.addr == p.addr + 12

    def test_bounds_violation_traps(self):
        m = CheriModel()
        p = m.create(_INT, 4, "x", "static")
        oob = m.array_shift(p, _INT, IntegerValue(2))
        from repro.ctypes.types import QualType
        with pytest.raises(MemoryError_):
            m.load(QualType(_INT), oob)

    def test_fabricated_pointer_untagged(self):
        m = CheriModel()
        p = m.ptr_from_int(IntegerValue(0x5000))
        assert isinstance(p.meta, Capability)
        assert not p.meta.tag

    def test_uintptr_roundtrip_keeps_capability(self):
        m = CheriModel()
        p = m.create(_INT, 4, "x", "static")
        i = m.int_from_ptr(p, Integer(IntKind.ULONG))
        assert isinstance(i.meta, Capability)
        back = m.ptr_from_int(i)
        assert back.meta == p.meta

    def test_narrow_int_drops_capability(self):
        # §4: "non-intptr_t integer values do not carry pointer
        # provenance".
        m = CheriModel()
        p = m.create(_INT, 4, "x", "static")
        i = m.int_from_ptr(p, Integer(IntKind.UINT))
        assert i.meta is None


class TestPaperFindings:
    def test_masking_bug(self):
        # (i & 3u): the result is the fat pointer with offset&3 — its
        # integer value is base + (offset&3), nonzero for base != 0.
        m = CheriModel()
        p = m.create(_INT, 4, "x", "static")
        i = m.int_from_ptr(p, Integer(IntKind.ULONG))
        r = m.int_binop("&", i, IntegerValue(3), i.value & 3)
        assert r is not None
        assert r.value == p.addr  # base + (0 & 3) == base != 0
        assert r.value != 0

    def test_masking_bug_end_to_end(self, run_ok):
        src = r'''
#include <stdio.h>
#include <stdint.h>
int main(void) {
  int x = 1;
  uintptr_t i = (uintptr_t)&x;
  if ((i & 3u) == 0u) printf("zero\n");
  else printf("nonzero\n");
  return 0;
}'''
        lp64 = run_ok(src, model="provenance")
        cheri = run_ok(src, model="cheri")
        assert lp64.stdout == "zero\n"
        assert cheri.stdout == "nonzero\n"   # the paper's finding

    def test_equality_bug_prefix_vs_fixed(self, run):
        src = r'''
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  int *p = &x + 1;
  int *q = &y;
  if (p == q) printf("equal\n"); else printf("unequal\n");
  return 0;
}'''
        pre = run(src, model="cheri")
        fixed = run(src, model="cheri", exact_equality=True)
        assert pre.stdout == "equal\n"      # address-only comparison
        assert fixed.stdout == "unequal\n"  # CExEq compares metadata

    def test_left_biased_provenance(self):
        m = CheriModel()
        p = m.create(_INT, 4, "x", "static")
        i = m.int_from_ptr(p, Integer(IntKind.ULONG))
        plain = IntegerValue(8)
        left = m.int_binop("+", i, plain, i.value + 8)
        assert isinstance(left.meta, Capability)
        right = m.int_binop("+", plain, i, i.value + 8)
        assert right.meta is None   # rhs capability not inherited

    def test_oob_construction_ok_deref_traps(self, run, expect_ub):
        # CHERI C: out-of-bounds construction is fine; the bounds check
        # fires at dereference.
        ok = run(r'''
int main(void) {
    int a[4] = {1,2,3,4};
    int *p = a + 7;
    p = p - 5;
    return *p - 3;
}''', model="cheri")
        assert ok.status == "done" and ok.exit_code == 0
        expect_ub(r'''
int main(void) {
    int a[4] = {1,2,3,4};
    int *p = a + 7;
    return *p;
}''', "Access_out_of_bounds", model="cheri")

    def test_suite_runs_under_cheri(self):
        from repro.testsuite import TESTS, run_test
        for name in ("int_cast_roundtrip", "oob_transient"):
            result = run_test(TESTS[name], "cheri")
            assert result.matches, (name, result.verdict)
