"""Core language: pretty printer, well-formedness checker, elaboration
output shape (paper §5.2, Fig. 2/3)."""

import pytest

from repro.core import ast as K, pretty_expr, pretty_program, pretty_pure
from repro.core.typecheck import typecheck_program
from repro.ctypes import LP64
from repro.pipeline import compile_c
from repro import ub as UB


class TestWellFormedness:
    def test_every_compiled_program_checks(self, compile_only):
        pipe = compile_only(r'''
#include <stdio.h>
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int main(void) {
    for (int i = 0; i < 5; i++) printf("%d ", fib(i));
    printf("\n");
    return 0;
}''')
        assert typecheck_program(pipe.core) == []

    def test_unbound_symbol_detected(self):
        prog = K.Program(tags=None, impl=LP64)
        prog.tags = compile_c("int main(void){return 0;}").core.tags
        prog.procs["bad"] = K.ProcDef(
            "bad", [], K.EPure(K.PSym("nope")))
        errors = typecheck_program(prog)
        assert any("unbound" in e for e in errors)

    def test_run_without_save_detected(self):
        prog = compile_c("int main(void){return 0;}").core
        prog.procs["bad"] = K.ProcDef(
            "bad", [], K.ERun("ghost", []))
        errors = typecheck_program(prog)
        assert any("no enclosing save" in e for e in errors)

    def test_run_arity_mismatch_detected(self):
        prog = compile_c("int main(void){return 0;}").core
        from repro.dynamics.values import TRUE
        prog.procs["bad"] = K.ProcDef(
            "bad", [],
            K.ESave("l", [("x", K.PVal(TRUE))],
                    K.ERun("l", [])))
        errors = typecheck_program(prog)
        assert any("arity" in e for e in errors)


class TestElaborationShape:
    def test_shift_elaboration_matches_fig3(self, compile_only):
        """The elaborated `e1 << e2` contains the Fig. 3 ingredients:
        unseq of the operands, weak sequencing, the Unspecified cases,
        and the Negative_shift / Shift_too_large undef arms."""
        pipe = compile_only(
            "int main(void) { int a = 1, b = 2; return a << b; }")
        text = pretty_program(pipe.core)
        assert "unseq(" in text
        assert "let weak" in text
        assert "undef(Negative_shift)" in text
        assert "undef(Shift_too_large)" in text
        assert "undef(Exceptional_condition)" in text
        assert "Unspecified" in text
        assert "ctype_width" in text

    def test_unsigned_shift_has_modulo_no_overflow_undef(
            self, compile_only):
        pipe = compile_only(
            "unsigned f(unsigned a, unsigned b) { return a << b; }"
            "int main(void) { return 0; }")
        text = pretty_program(pipe.core)
        # unsigned: reduce modulo Ivmax+1 (rem_t), no representability
        # check for the shifted value.
        assert "rem_t" in text
        assert "ivmax" in text

    def test_postfix_incr_uses_let_atomic_neg_store(self, compile_only):
        pipe = compile_only(
            "int main(void) { int x = 0; x++; return x - 1; }")
        text = pretty_program(pipe.core)
        assert "let atomic" in text
        assert "neg(store" in text

    def test_loops_use_save_run(self, compile_only):
        pipe = compile_only(
            "int main(void) { int i = 0; while (i < 3) i++; "
            "return 0; }")
        text = pretty_program(pipe.core)
        assert "save" in text and "run" in text

    def test_blocks_become_scopes(self, compile_only):
        pipe = compile_only(
            "int main(void) { int x = 1; { int y = 2; x += y; } "
            "return 0; }")
        text = pretty_program(pipe.core)
        assert "scope [" in text

    def test_calls_become_ccall(self, compile_only):
        pipe = compile_only(
            "int f(int a) { return a; } "
            "int main(void) { return f(0); }")
        text = pretty_program(pipe.core)
        assert "ccall(" in text


class TestPretty:
    def test_pure_constructs(self):
        pe = K.PCase(K.PSym("v"), [
            (K.PatCtor("Specified", (K.PatSym("x"),)),
             K.PBinop("+", K.PSym("x"), K.PSym("x"))),
            (K.PatCtor("Unspecified", (K.PatWild(),)),
             K.PUndef(UB.EXCEPTIONAL_CONDITION)),
        ])
        text = pretty_pure(pe)
        assert "case v with" in text
        assert "| Specified(x)" in text
        assert "undef(Exceptional_condition)" in text

    def test_effect_constructs(self):
        e = K.EUnseq([K.ESkip(), K.ESkip()])
        assert "unseq(" in pretty_expr(e)
        e2 = K.EWseq(K.PatWild(), K.ESkip(), K.ESkip())
        assert "let weak" in pretty_expr(e2)
