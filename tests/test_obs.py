"""The telemetry spine (:mod:`repro.obs`): metrics merge exactly,
traces round-trip through the CLI and ``stats``, farm workers ship
metrics that sum to the serial totals, store corruption is counted
and warned about, and — the load-bearing invariant — semantics are
byte-identical with tracing on."""

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro.obs as obs
from repro.ctypes.implementation import LP64
from repro.farm.campaign import sweep_campaign
from repro.farm.pool import sweep
from repro.farm.store import ArtifactStore, StoreCorruptionWarning
from repro.obs.metrics import MetricsRegistry, merge_metric_dicts
from repro.obs.stats import render_text, summarize_trace
from repro.obs.trace import read_trace, run_id_for
from repro.pipeline import (
    MODELS, clear_compile_cache, compile_c, set_artifact_store,
)

SRC_OK = r'''
int main(void) { int a = 40; return a + 2; }
'''

# Two unsequenced pairs: a real multi-path exploration.
SRC_UNSEQ = r'''
int x, y;
int f(int v) { x = v; return v; }
int g(int v) { y = v; return v; }
int main(void) { return (f(1) + g(2)) & 1; }
'''

CORPUS = [("ok", SRC_OK), ("unseq", SRC_UNSEQ)]


@pytest.fixture(autouse=True)
def fresh_compile_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, cwd=str(cwd),
        env={"PYTHONPATH": str(Path(__file__).parent.parent / "src"),
             "PATH": "/usr/bin:/bin"})


class TestMetricsRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        r = MetricsRegistry()
        r.inc("c")
        r.inc("c", 4)
        r.gauge("g", 7.5)
        r.observe("h", 2.0)
        r.observe("h", 6.0)
        d = r.to_dict()
        assert d["counters"]["c"] == 5
        assert d["gauges"]["g"] == 7.5
        assert d["histograms"]["h"] == {
            "count": 2, "total": 8.0, "min": 2.0, "max": 6.0}

    def test_merge_sums_counts_and_widens_extrema(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.observe("h", 1.0)
        b.observe("h", 9.0)
        b.observe("h", 3.0)
        merged = merge_metric_dicts([a.to_dict(), b.to_dict(), None])
        assert merged["counters"]["c"] == 5
        assert merged["histograms"]["h"] == {
            "count": 3, "total": 13.0, "min": 1.0, "max": 9.0}

    def test_collecting_scope_is_isolated(self):
        # Worker metrics must arrive at the parent exactly once —
        # via the explicit snapshot merge, never live.
        with obs.tracing(None) as outer:
            with obs.collecting() as inner:
                obs.active().inc("task.work", 3)
            assert "task.work" not in outer.metrics.to_dict()[
                "counters"]
            outer.merge(inner.to_dict())
            assert outer.metrics.to_dict()["counters"][
                "task.work"] == 3


class TestTracing:
    def test_trace_file_round_trips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.tracing(str(path), identity="id-1") as ctx:
            with ctx.span("outer", flavour="test"):
                with ctx.span("inner"):
                    ctx.inc("things", 2)
        records = read_trace(str(path))
        kinds = [r["type"] for r in records]
        assert kinds[0] == "meta"
        assert kinds[-1] == "metrics"
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["attrs"] == {"flavour": "test"}
        assert records[-1]["metrics"]["counters"]["things"] == 2
        # span histograms always recorded alongside the span records
        assert records[-1]["metrics"]["histograms"][
            "span.outer"]["count"] == 1
        run = records[0]["run"]
        assert all(r["run"] == run for r in records)

    def test_run_ids_are_content_derived(self):
        assert run_id_for("same") == run_id_for("same")
        assert run_id_for("same") != run_id_for("different")
        assert len(run_id_for("x")) == 16

    def test_disabled_is_inert(self):
        assert obs.active() is None
        with obs.maybe_span(None, "nothing"):
            pass  # must not raise, must not record anywhere

    def test_profile_dir_captures_phases(self, tmp_path):
        prof = tmp_path / "prof"
        with obs.tracing(None, profile_dir=str(prof)):
            compile_c(SRC_OK)
        pstats_files = sorted(prof.glob("*.pstats"))
        txt_files = sorted(prof.glob("*.txt"))
        assert pstats_files, "no .pstats captures written"
        assert len(txt_files) == len(pstats_files)
        names = {p.stem.split("-", 1)[1] for p in pstats_files}
        assert "pipeline.parse" in names
        assert "cumulative" in txt_files[0].read_text()


class TestCliRoundTrip:
    def test_trace_metrics_and_stats(self, tmp_path):
        (tmp_path / "p.c").write_text(SRC_UNSEQ)
        trace = tmp_path / "t.jsonl"
        r = _cli(["p.c", "--exhaustive", "--model", "concrete",
                  "--trace", str(trace), "--metrics"], tmp_path)
        assert r.returncode == 0, r.stderr
        assert "metrics:" in r.stderr
        assert "explore.paths" in r.stderr

        s = _cli(["stats", str(trace)], tmp_path)
        assert s.returncode == 0, s.stderr
        assert "pipeline.parse" in s.stdout
        assert "explore" in s.stdout
        assert "paths/s" in s.stdout

        j = _cli(["stats", str(trace), "--json"], tmp_path)
        summary = json.loads(j.stdout)
        assert summary["explorer"]["paths"] == \
            summary["metrics"]["counters"]["explore.paths"]
        assert summary["phases"]["pipeline.parse"]["count"] == 1

    def test_run_id_is_deterministic_across_invocations(
            self, tmp_path):
        (tmp_path / "p.c").write_text(SRC_OK)
        runs = []
        for name in ("a.jsonl", "b.jsonl"):
            r = _cli(["p.c", "--model", "concrete",
                      "--trace", name], tmp_path)
            assert r.returncode == 42, r.stderr
            runs.append(read_trace(str(tmp_path / name))[0]["run"])
        assert runs[0] == runs[1], \
            "identical invocations must share a run id"
        r = _cli(["p.c", "--model", "provenance",
                  "--trace", "c.jsonl"], tmp_path)
        assert r.returncode == 42, r.stderr
        other = read_trace(str(tmp_path / "c.jsonl"))[0]["run"]
        assert other != runs[0], \
            "semantically different invocations must not collide"

    def test_stats_missing_file_is_exit_2(self, tmp_path):
        r = _cli(["stats", "no-such-trace.jsonl"], tmp_path)
        assert r.returncode == 2
        assert "stats" in r.stderr


def _deterministic_totals(metric_dict):
    """The worker counters a farm/serial comparison can pin exactly
    (timing histograms vary; their counts do not)."""
    counters = {k: v
                for k, v in metric_dict["counters"].items()
                if not k.startswith("farm.")}
    hist_counts = {k: v["count"]
                   for k, v in metric_dict["histograms"].items()
                   if not k.startswith("farm.")}
    return counters, hist_counts


class TestFarmMetrics:
    def test_worker_merge_equals_serial_totals(self, tmp_path):
        kw = dict(models=["concrete", "provenance"], mode="explore",
                  max_paths=50, seed=7)
        serial = sweep(CORPUS, jobs=1,
                       store=tmp_path / "s1", **kw)
        parallel = sweep(CORPUS, jobs=2,
                         store=tmp_path / "s2", **kw)
        merged_serial = merge_metric_dicts(
            r.data["metrics"] for r in serial)
        merged_parallel = merge_metric_dicts(
            r.data["metrics"] for r in parallel)
        assert _deterministic_totals(merged_serial) == \
            _deterministic_totals(merged_parallel)
        counters = merged_parallel["counters"]
        assert counters["explore.paths"] > 2
        assert counters["driver.runs"] >= counters["explore.paths"]
        # translation is model-independent: once per program
        assert counters["pipeline.translations"] == len(CORPUS)

    def test_campaign_report_metrics_block(self, tmp_path):
        results, report = sweep_campaign(
            CORPUS, models=["concrete"], jobs=2, mode="explore",
            max_paths=50, store=tmp_path / "store")
        doc = report.to_json()
        m = doc["metrics"]
        assert set(m) >= {"compile", "explore", "farm", "workers"}
        assert m["farm"]["tasks"] == len(results)
        assert m["farm"]["timeouts"] == 0
        assert m["compile"]["translations"] == \
            doc["cache"]["translations"]
        workers = merge_metric_dicts(
            r.data["metrics"] for r in results)
        assert m["workers"]["counters"] == workers["counters"]
        # exploration counters live only in the metrics block now —
        # the transitional cache scalar aliases are gone
        assert not any(k.startswith("explore_") for k in doc["cache"])
        assert set(m["explore"]) == {"hits", "misses", "puts",
                                     "hit_rate", "live_paths",
                                     "resumes"}

    def test_campaign_folds_worker_metrics_into_trace(
            self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with obs.tracing(str(trace)):
            sweep_campaign(CORPUS, models=["concrete"], jobs=2,
                           mode="explore", max_paths=50,
                           store=tmp_path / "store")
        summary = summarize_trace(str(trace))
        # per-phase timings crossed the process boundary as span.*
        # histograms even though workers write no trace file
        assert summary["phases"]["pipeline.parse"]["count"] == \
            len(CORPUS)
        assert summary["explorer"]["paths"] > 2
        assert summary["stores"]["compiled"]["stores"] == len(CORPUS)
        text = render_text(summary)
        assert "pipeline.parse" in text
        assert "store kind" in text


class TestStoreCorruption:
    def _corrupt_one(self, store_dir):
        s = ArtifactStore(store_dir)
        previous = set_artifact_store(s)
        try:
            clear_compile_cache()
            compile_c(SRC_OK)
            [path] = sorted(p for p in s.objects.glob("*/*.pkl")
                            if not p.name.startswith(".tmp-"))
            path.write_bytes(b"\x00garbage")
            clear_compile_cache()
            with pytest.warns(StoreCorruptionWarning,
                              match="compiled.*falling back"):
                program = compile_c(SRC_OK)
            assert program.run("concrete").exit_code == 42
        finally:
            set_artifact_store(previous)
            clear_compile_cache()
        return s

    def test_corruption_warns_and_counts(self, tmp_path):
        s = self._corrupt_one(tmp_path / "store")
        stats = s.stats()
        assert stats["corrupt"] == 1          # flat counter intact
        assert stats["by_kind"]["compiled"]["corrupt"] == 1
        assert stats["by_kind"]["compiled"]["stores"] == 2

    def test_corruption_reaches_obs_counters(self, tmp_path):
        with obs.collecting() as registry:
            self._corrupt_one(tmp_path / "store")
        counters = registry.to_dict()["counters"]
        assert counters["store.compiled.corrupt"] == 1
        # cold miss + the corrupt entry (a corrupt load is a miss too)
        assert counters["store.compiled.misses"] == 2
        assert "store.compiled.hits" not in counters


def _suite_verdicts(names, models, tracing_path=None):
    from repro.testsuite.goldens import compute_verdicts
    if tracing_path is None:
        return compute_verdicts(models=models, names=names)
    with obs.tracing(str(tracing_path)):
        return compute_verdicts(models=models, names=names)


class TestSemanticsUnchanged:
    def test_verdicts_identical_with_tracing_on(self, tmp_path):
        from repro.testsuite.programs import TESTS
        names = sorted(TESTS)[:4]
        models = ["concrete", "provenance"]
        plain = _suite_verdicts(names, models)
        clear_compile_cache()
        traced = _suite_verdicts(names, models,
                                 tmp_path / "t.jsonl")
        assert json.dumps(plain, sort_keys=True) == \
            json.dumps(traced, sort_keys=True)

    @pytest.mark.slow_sweep
    def test_full_goldens_identical_with_tracing_on(self, tmp_path):
        from repro.testsuite.goldens import diff_goldens, load_goldens
        goldens = load_goldens(
            Path(__file__).parent / "goldens" / "verdicts.json")
        with obs.tracing(str(tmp_path / "t.jsonl")):
            from repro.testsuite.goldens import compute_verdicts
            live = compute_verdicts(models=list(MODELS),
                                    max_paths=goldens["max_paths"],
                                    max_steps=goldens["max_steps"])
        assert diff_goldens(goldens, live) == []
