"""Unit tests for the Ail type checker (Typed Ail, paper §5.1)."""

import pytest

from repro.ail import ast as A, desugar
from repro.cparser import parse_text
from repro.ctypes import LP64
from repro.ctypes.types import (
    Floating, FloatKind, Integer, IntKind, Pointer,
)
from repro.errors import TypeCheckError
from repro.typing import typecheck


def tc(src):
    return typecheck(desugar(parse_text(src), LP64), LP64)


def expr_of_return(src):
    prog = tc(src)
    main = prog.functions[prog.main]
    for item in main.body.items:
        if isinstance(item, A.SReturn):
            return item.expr
    raise AssertionError("no return")


class TestExpressionTypes:
    def test_int_constant(self):
        e = expr_of_return("int main(void) { return 1; }")
        assert e.operand.ty.ty == Integer(IntKind.INT)

    def test_large_constant_is_long(self):
        e = expr_of_return("int main(void) { return (int)5000000000; }")
        cast = e.operand           # EConv(assign) around the cast
        assert cast.operand.ty.ty == Integer(IntKind.LONG)

    def test_hex_constant_can_be_unsigned(self):
        src = "int main(void) { unsigned int x = 0xFFFFFFFF; return 0; }"
        prog = tc(src)  # must typecheck: 0xFFFFFFFF is unsigned int

    def test_suffix_u(self):
        src = "int main(void) { return (int)(1u + 1); }"
        tc(src)

    def test_usual_arith_int_plus_long(self):
        src = "long f(int a, long b) { return a + b; }" \
              "int main(void){ return 0; }"
        prog = tc(src)
        f = [fd for s, fd in prog.functions.items()
             if s.name == "f"][0]
        ret = f.body.items[0]
        # a + b : long
        assert ret.expr.operand.ty.ty == Integer(IntKind.LONG)

    def test_comparison_is_int(self):
        e = expr_of_return(
            "int main(void) { long a = 1; return a < 2; }")
        assert e.operand.ty.ty == Integer(IntKind.INT)

    def test_array_decays_in_rvalue(self):
        src = "int main(void) { int a[3]; int *p = a; return 0; }"
        prog = tc(src)
        decl = prog.functions[prog.main].body.items[1]
        init = decl.init.expr
        assert isinstance(init, A.EConv) and init.kind == "assign"

    def test_sizeof_is_size_t(self):
        e = expr_of_return(
            "int main(void) { return (int)sizeof(int); }")
        cast = e.operand
        assert cast.operand.ty.ty == Integer(IntKind.ULONG)

    def test_pointer_diff_is_ptrdiff(self):
        src = "int main(void) { int a[2]; return (int)(&a[1] - &a[0]); }"
        tc(src)

    def test_float_promotion_in_arith(self):
        src = "int main(void) { double d = 1; float f = 2.0f; " \
              "d = d + f; return 0; }"
        tc(src)


class TestLvalues:
    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { 1 = 2; return 0; }")

    def test_assign_to_const_rejected(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { const int x = 1; x = 2; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { int a[2], b[2]; a = b; return 0; }")

    def test_addressof_rvalue_rejected(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { int *p = &(1 + 2); return 0; }")

    def test_incr_requires_modifiable(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { const int x = 0; x++; return 0; }")


class TestCallChecking:
    def test_arity_mismatch(self):
        with pytest.raises(TypeCheckError):
            tc("int f(int a) { return a; } "
               "int main(void) { return f(1, 2); }")

    def test_too_few_args(self):
        with pytest.raises(TypeCheckError):
            tc("int f(int a, int b) { return a; } "
               "int main(void) { return f(1); }")

    def test_call_non_function(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { int x = 1; return x(); }")

    def test_variadic_extra_args_ok(self):
        tc('#include <stdio.h>\n'
           'int main(void) { printf("%d %d", 1, 2); return 0; }')

    def test_incompatible_pointer_arg(self):
        with pytest.raises(TypeCheckError):
            tc("void f(int *p) {} "
               "int main(void) { double d; f(&d); return 0; }")

    def test_void_pointer_compatible(self):
        tc("void f(void *p) {} "
           "int main(void) { int x; f(&x); return 0; }")


class TestPointerRules:
    def test_deref_non_pointer(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { int x = 1; return *x; }")

    def test_arith_on_void_ptr_rejected(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { void *p = 0; p = p + 1; return 0; }")

    def test_null_constant_assignable(self):
        tc("int main(void) { int *p = 0; return p == 0; }")

    def test_member_of_non_struct(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { int x = 1; return x.y; }")

    def test_unknown_member(self):
        with pytest.raises(TypeCheckError):
            tc("struct s { int a; }; "
               "int main(void) { struct s v; return v.b; }")

    def test_arrow_on_struct_value(self):
        with pytest.raises(TypeCheckError):
            tc("struct s { int a; }; "
               "int main(void) { struct s v; return v->a; }")


class TestStatements:
    def test_return_type_conversion(self):
        tc("int main(void) { return 1.5; }")  # double -> int, allowed

    def test_return_value_in_void_function(self):
        with pytest.raises(TypeCheckError):
            tc("void f(void) { return 1; } int main(void){ return 0; }")

    def test_return_nothing_in_int_function(self):
        with pytest.raises(TypeCheckError):
            tc("int f(void) { return; } int main(void){ return 0; }")

    def test_switch_on_non_integer(self):
        with pytest.raises(TypeCheckError):
            tc("int main(void) { double d = 1; switch (d) {} "
               "return 0; }")

    def test_if_on_struct_rejected(self):
        with pytest.raises(TypeCheckError):
            tc("struct s { int a; }; int main(void) "
               "{ struct s v; if (v) return 1; return 0; }")
