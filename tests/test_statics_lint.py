"""Core-IR static analysis: footprint/purity summaries, static POR
pre-pruning, and the definite-UB linter (:mod:`repro.statics`).

Three layers of guarantees are pinned here:

* **summaries** — the bottom-up abstract interpretation annotates
  every ``unseq`` with whether its children statically commute and
  with per-child footprints; annotations serialize through the
  artifact store and survive a round-trip onto a freshly compiled
  copy of the same term;
* **lint conformance** — the satellite gate: every ``definite``
  finding over the whole de facto test suite must correspond to a
  behaviour pinned in ``tests/goldens/verdicts.json`` under some
  memory model.  Zero false positives, by construction of the gate;
* **pre-pruning soundness** — static pre-pruning must be invisible in
  the behaviour sets: across the whole suite × every model,
  exploration with ``static_prune=True`` yields the byte-identical
  sorted ``distinct()`` summaries as dynamic-only POR, with
  less-than-or-equal paths explored (static prune ⊆ dynamic
  sleep-set prune, the soundness contract of
  :mod:`repro.statics`).
"""


import pytest

from repro.errors import CerberusError
from repro.farm.explorestore import ExploreStore
from repro.farm.pool import SweepTask, execute_task
from repro.farm.store import ArtifactStore
from repro.pipeline import (
    MODELS, StaticsRecord, clear_compile_cache, compile_c,
    compile_for_model, lint_c,
)
from repro.statics import (
    STATICS_VERSION, analyze_program, apply_annotations,
    collect_unseqs, lint_program, serialize_unseq_info,
)
from repro.testsuite.goldens import (
    GOLDEN_MAX_PATHS, GOLDEN_MAX_STEPS, load_goldens,
)
from repro.testsuite.programs import TESTS

DISJOINT = r'''
int a, b;
int main(void) { (a = 1) + (b = 2); return a + b - 3; }
'''

RACE = r'''
int main(void) { int x; int y = (x = 1) + (x = 2); return 0; }
'''

CALLS = r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); putchar('\n'); return 0; }
'''

UNINIT = r'''
int main(void) { int x; return x; }
'''

OOB = r'''
int main(void) { int a[2]; return a[5]; }
'''

SHIFT = r'''
int main(void) { int x = 1; return x << 40; }
'''

POSSIBLE = r'''
#include <stdlib.h>
int main(void) { int x; if (rand()) x = 1; return x; }
'''

CLEAN = r'''
int main(void) { int a = 3; return a - 3; }
'''


def _annotations(source):
    program = compile_c(source).core
    analyze_program(program)
    return [getattr(u, "_static_unseq", None)
            for u in collect_unseqs(program)]


class TestSummaries:
    def test_disjoint_stores_commute(self):
        infos = [i for i in _annotations(DISJOINT) if i is not None]
        assert infos, "main's unseq must be annotated"
        assert all(commutes for commutes, _ in infos)
        # The store pair's footprints resolved to concrete disjoint
        # write ranges (not ⊤, not merely pure).
        ranged = [children for _, children in infos
                  if any(c not in (None, "pure")
                         and any(r[3] for r in c) for c in children)]
        assert ranged

    def test_conflicting_stores_do_not_commute(self):
        conflicting = [i for i in _annotations(RACE)
                       if i is not None and not i[0]]
        assert len(conflicting) == 1
        _, children = conflicting[0]
        # Both children write the same object: footprints are known.
        writes = [c for c in children
                  if c not in (None, "pure")
                  and any(r[3] for r in c)]
        assert len(writes) == 2

    def test_opaque_calls_are_top(self):
        """putchar is opaque to the analysis: its children summaries
        are ⊤ (None) and the unseq must not commute."""
        infos = [i for i in _annotations(CALLS) if i is not None]
        assert any(not commutes and None in children
                   for commutes, children in infos)

    def test_annotation_round_trip(self):
        """Serialized tables re-attach onto a freshly compiled copy of
        the same term and reproduce the annotations positionally."""
        program = compile_c(DISJOINT).core
        report = analyze_program(program)
        table = serialize_unseq_info(program, report)
        clear_compile_cache()
        fresh = compile_c(DISJOINT).core
        assert fresh is not program
        assert apply_annotations(fresh, table)
        assert getattr(fresh, "_statics_annotated", False)
        assert [getattr(u, "_static_unseq", None)
                for u in collect_unseqs(fresh)] == list(table)

    def test_stale_table_is_rejected(self):
        """A table whose length does not match the term's unseq count
        (a different program under the same key) must not attach."""
        program = compile_c(DISJOINT).core
        assert not apply_annotations(program, [])


class TestLint:
    def _findings(self, source, name="<string>"):
        return lint_program(compile_c(source, name=name).core)

    def test_unsequenced_race_definite(self):
        findings = self._findings(RACE)
        races = [f for f in findings if "Unsequenced_race" in f.names]
        assert races and all(f.definite for f in races)

    def test_uninit_read_definite(self):
        findings = self._findings(UNINIT, name="uninit.c")
        uninit = [f for f in findings
                  if "Read_uninitialised" in f.names]
        assert uninit and uninit[0].definite
        assert "uninit.c" in uninit[0].format()
        assert "definite" in uninit[0].format()

    def test_constant_oob_definite(self):
        findings = self._findings(OOB)
        oob = [f for f in findings
               if any("out_of_bounds" in n.lower() for n in f.names)]
        assert oob and any(f.definite for f in oob)

    def test_overwide_shift_definite(self):
        findings = self._findings(SHIFT)
        shift = [f for f in findings if "Shift_too_large" in f.names]
        assert shift and shift[0].definite

    def test_branch_dependent_uninit_is_possible(self):
        """An uninitialized read only one branch reaches must not be
        reported definite."""
        findings = self._findings(POSSIBLE)
        assert findings
        assert all(f.severity == "possible" for f in findings)

    def test_clean_program_has_no_findings(self):
        assert self._findings(CLEAN) == []

    def test_finding_dict_round_trip(self):
        f = self._findings(UNINIT)[0]
        d = f.to_dict()
        assert d["severity"] == "definite"
        assert d["kind"] == f.kind
        assert list(d["names"]) == list(f.names)

    def test_lint_c_entry_point(self):
        findings = lint_c(RACE)
        assert any(f.definite for f in findings)


class TestLintGoldenConformance:
    """The satellite gate: a ``definite`` verdict is a *promise* — on
    the 53 de facto test programs, every definite finding must name a
    UB behaviour some memory model's golden verdict actually pins.
    Zero static false positives against the dynamic oracle."""

    @pytest.fixture(scope="class")
    def goldens(self):
        return load_goldens()["verdicts"]

    @pytest.mark.parametrize("name", sorted(TESTS))
    def test_definite_findings_are_pinned_behaviours(self, goldens,
                                                     name):
        try:
            findings = compile_c(TESTS[name].source,
                                 name=name).lint(name=name)
        except CerberusError:
            pytest.skip("front end rejects under the default impl")
        pinned = {b for cells in goldens[name].values()
                  for b in cells}
        for f in findings:
            if not f.definite:
                continue
            assert any(b.startswith(f"UB[{n}")
                       for n in f.names for b in pinned), \
                (f.format(), sorted(pinned))

    def test_suite_has_definite_findings(self):
        """The gate must not pass vacuously: the suite contains
        deliberately-UB programs the linter must catch."""
        hits = 0
        for name in sorted(TESTS):
            try:
                findings = compile_c(TESTS[name].source,
                                     name=name).lint(name=name)
            except CerberusError:
                continue
            hits += sum(1 for f in findings if f.definite)
        assert hits >= 10


class TestStaticPruneEquivalence:
    """The tentpole's soundness criterion: with static pre-pruning on,
    exploration of every suite program under every model produces the
    byte-identical sorted behaviour set as dynamic-only POR, while
    never exploring more paths."""

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_behaviour_sets_identical_paths_fewer(self, model):
        checked = 0
        for name in sorted(TESTS):
            try:
                program = compile_for_model(TESTS[name].source, model)
            except CerberusError:
                continue
            kw = dict(max_paths=GOLDEN_MAX_PATHS,
                      max_steps=GOLDEN_MAX_STEPS, por=True)
            try:
                off = program.explore(model, **kw)
                on = program.explore(model, static_prune=True, **kw)
            except CerberusError:
                continue
            assert sorted(o.summary() for o in off.distinct()) == \
                sorted(o.summary() for o in on.distinct()), \
                (name, model)
            assert on.paths_run <= off.paths_run, (name, model)
            checked += 1
        assert checked >= 50   # the suite actually ran


class TestStaticsStore:
    def test_statics_record_cached(self, tmp_path):
        store = ArtifactStore(tmp_path)
        program = compile_c(DISJOINT)
        rec = program.statics(store)
        assert isinstance(rec, StaticsRecord)
        assert rec.version == STATICS_VERSION
        assert rec.complete
        assert store.stats()["record_stores"] == 1
        # A freshly compiled artifact re-attaches from the cache: one
        # record hit, no second analysis stored.
        clear_compile_cache()
        fresh = compile_c(DISJOINT)
        rec2 = fresh.statics(store)
        assert store.stats()["record_hits"] == 1
        assert store.stats()["record_stores"] == 1
        assert rec2.table == rec.table
        assert getattr(fresh.core, "_statics_annotated", False)

    def test_statics_key_separates_sources(self, tmp_path):
        store = ArtifactStore(tmp_path)
        compile_c(DISJOINT).statics(store)
        compile_c(RACE).statics(store)
        assert store.stats()["record_stores"] == 2

    def test_explore_key_has_static_prune_part(self, tmp_path):
        es = ExploreStore(ArtifactStore(tmp_path))
        from repro.ctypes.implementation import LP64
        k_off = es.key(DISJOINT, LP64, "concrete")
        k_on = es.key(DISJOINT, LP64, "concrete", static_prune=True)
        assert k_off != k_on

    def test_store_backed_static_explore(self, tmp_path):
        """``explore(store=, static_prune=True)`` publishes both a
        statics record and an exploration record; a warm call replays
        the behaviour set with zero live paths."""
        store = ArtifactStore(tmp_path)
        program = compile_c(DISJOINT)
        r1 = program.explore("concrete", store=store, max_paths=200,
                             static_prune=True)
        assert r1.exhausted
        clear_compile_cache()
        fresh = compile_c(DISJOINT)
        es = ExploreStore(store)
        r2 = fresh.explore("concrete", store=es, max_paths=200,
                           static_prune=True)
        assert es.stats()["live_paths"] == 0
        assert sorted(o.summary() for o in r1.distinct()) == \
            sorted(o.summary() for o in r2.distinct())


class TestFarmLintFilter:
    def test_definite_finding_skips_exploration(self):
        task = SweepTask(0, "race", kind="explore", source=RACE,
                         models=("concrete",), max_paths=50,
                         lint=True)
        result = execute_task(task)
        assert result.ok
        assert result.data["lint_filtered"]
        assert result.data["explorations"] == {}
        assert any(f["severity"] == "definite"
                   for f in result.data["lint"])

    def test_clean_program_still_explored(self):
        task = SweepTask(0, "disjoint", kind="explore",
                         source=DISJOINT, models=("concrete",),
                         max_paths=200, lint=True,
                         static_prune=True)
        result = execute_task(task)
        assert result.ok
        assert "lint_filtered" not in result.data
        assert not any(f["severity"] == "definite"
                       for f in result.data["lint"])
        summary = result.data["explorations"]["concrete"]
        assert summary.exhausted
        # Statically-commuting unseq points are never branched.
        assert summary.paths_run == 1

    def test_suite_task_attaches_lint_without_skipping(self):
        task = SweepTask(0, "uninit_read", kind="suite",
                         models=("concrete",), lint=True)
        result = execute_task(task)
        assert result.ok
        assert result.data["results"]   # suite still ran
        assert any(f["severity"] == "definite"
                   for f in result.data["lint"])


class TestExhaustiveShimRemoved:
    def test_deprecated_module_is_gone(self):
        # The one-release deprecation grace of
        # repro.dynamics.exhaustive is over: the module no longer
        # exists; repro.dynamics.explore is the import path.
        with pytest.raises(ImportError):
            import repro.dynamics.exhaustive  # noqa: F401
        from repro.dynamics.explore import Explorer  # noqa: F401


class TestLintCli:
    def _write(self, tmp_path, source):
        path = tmp_path / "prog.c"
        path.write_text(source)
        return str(path)

    def test_definite_finding_exits_one(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["lint", self._write(tmp_path, RACE)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "definite" in out and "Unsequenced_race" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["lint", self._write(tmp_path, CLEAN)])
        assert rc == 0
        assert capsys.readouterr().out.strip() == ""

    def test_json_payload(self, tmp_path, capsys):
        import json
        from repro.cli import main
        path = self._write(tmp_path, UNINIT)
        rc = main(["lint", "--json", path])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert any("Read_uninitialised" in f["names"]
                   for f in payload[path])
