"""The embedded survey data and report generators (paper §2)."""

from repro.survey import (
    EXPERTISE, RESPONSES_TOTAL, SURVEY_15, SURVEY_2013_QUESTION_COUNT,
    SURVEY_2015_QUESTION_COUNT, expertise_table, survey_question_table,
    design_space_table, clarity_table,
)


class TestData:
    def test_totals(self):
        assert RESPONSES_TOTAL == 323
        assert SURVEY_2013_QUESTION_COUNT == 42
        assert SURVEY_2015_QUESTION_COUNT == 15

    def test_expertise_counts(self):
        table = dict(EXPERTISE)
        assert table["C applications programming"] == 255
        assert table["C systems programming"] == 230
        assert table["Linux developer"] == 160
        assert table["C or C++ standards committee member"] == 8
        assert table["GCC developer"] == 15
        assert table["Clang developer"] == 26
        assert table["Formal semantics"] == 18

    def test_q7_15_relational(self):
        q = SURVEY_15["[7/15]"]
        opts = {o.label: (o.count, o.percent) for o in q.options}
        assert opts["yes"] == (191, 60)
        assert opts["only sometimes"] == (52, 16)
        assert opts["no"] == (31, 9)
        extant = {o.label: o.count for o in q.extant_options}
        assert extant["yes"] == 101
        assert extant["yes, but it shouldn't"] == 37

    def test_q2_15_uninit_bimodal(self):
        q = SURVEY_15["[2/15]"]
        counts = [o.count for o in q.options]
        assert counts == [139, 42, 21, 112]
        # bimodal: UB and stable-value dominate (paper §2.4)
        assert counts[0] > counts[1] and counts[3] > counts[2]

    def test_q9_15_oob(self):
        q = SURVEY_15["[9/15]"]
        assert q.options[0].count == 230
        assert q.options[0].percent == 73

    def test_q5_15_copying(self):
        q = SURVEY_15["[5/15]"]
        assert q.options[0].count == 216

    def test_q11_15_char_array(self):
        q = SURVEY_15["[11/15]"]
        assert q.options[0].count == 243
        assert q.extant_options[0].count == 201

    def test_questions_map_to_registry(self):
        from repro.testsuite.questions import QUESTION_BY_ID
        for q in SURVEY_15.values():
            assert q.question_id in QUESTION_BY_ID


class TestReports:
    def test_expertise_table_renders(self):
        text = expertise_table()
        assert "323 responses" in text
        assert "C systems programming" in text and "230" in text

    def test_survey_question_table(self):
        text = survey_question_table("[7/15]")
        assert "191" in text and "60%" in text

    def test_design_space_table(self):
        text = design_space_table()
        assert "Structure and union padding" in text
        assert " 13" in text
        assert "85" in text

    def test_clarity_table(self):
        text = clarity_table()
        assert "38" in text and "28" in text and "26" in text
