"""Unit and property tests for memory values, abstract bytes, and the
repify/abstify codec (paper §5.9)."""

from hypothesis import given, strategies as st

from repro.ctypes import LP64, Member, QualType, TagEnv
from repro.ctypes.types import (
    Array, Integer, IntKind, Pointer, StructRef,
)
from repro.memory.values import (
    AByte, combine_provenance, IntegerValue, MVArray, MVInteger,
    MVPointer, MVStruct, MVUnspecified, PointerValue, PROV_EMPTY,
    PROV_WILDCARD, ValueCodec, zero_value,
)

_INT = Integer(IntKind.INT)
_UCHAR = Integer(IntKind.UCHAR)


def codec():
    return ValueCodec(LP64, TagEnv())


class TestProvenanceAlgebra:
    def test_empty_is_identity(self):
        assert combine_provenance(PROV_EMPTY, 3) == 3
        assert combine_provenance(3, PROV_EMPTY) == 3

    def test_same_provenance_kept(self):
        assert combine_provenance(5, 5) == 5

    def test_distinct_provenances_cancel(self):
        # §5.9: arithmetic involving two distinct provenances gives a
        # pure integer.
        assert combine_provenance(1, 2) is PROV_EMPTY

    @given(st.sampled_from([None, 1, 2]),
           st.sampled_from([None, 1, 2]))
    def test_commutative(self, a, b):
        assert combine_provenance(a, b) == combine_provenance(b, a)


class TestIntegerCodec:
    @given(st.integers(-2**31, 2**31 - 1))
    def test_int_roundtrip(self, value):
        c = codec()
        mv = MVInteger(_INT, IntegerValue(value))
        data = c.repify(_INT, mv)
        assert len(data) == 4
        back = c.abstify(_INT, data)
        assert isinstance(back, MVInteger)
        assert back.ival.value == value

    @given(st.integers(0, 2**64 - 1))
    def test_ulong_roundtrip(self, value):
        ty = Integer(IntKind.ULONG)
        c = codec()
        data = c.repify(ty, MVInteger(ty, IntegerValue(value)))
        back = c.abstify(ty, data)
        assert back.ival.value == value

    def test_little_endian(self):
        c = codec()
        data = c.repify(_INT, MVInteger(_INT, IntegerValue(0x01020304)))
        assert [b.value for b in data] == [4, 3, 2, 1]

    def test_provenance_on_every_byte(self):
        c = codec()
        data = c.repify(_INT, MVInteger(_INT, IntegerValue(7, prov=9)))
        assert all(b.prov == 9 for b in data)

    def test_unspecified_byte_poisons(self):
        c = codec()
        data = c.repify(_INT, MVInteger(_INT, IntegerValue(7)))
        data[2] = AByte()
        back = c.abstify(_INT, data)
        assert isinstance(back, MVUnspecified)

    def test_mixed_provenance_reads_empty(self):
        c = codec()
        data = c.repify(_INT, MVInteger(_INT, IntegerValue(7, prov=1)))
        data[0] = AByte(data[0].value, 2)
        back = c.abstify(_INT, data)
        assert back.ival.prov is PROV_EMPTY


class TestPointerCodec:
    def test_pointer_roundtrip_keeps_provenance(self):
        c = codec()
        pty = Pointer(QualType(_INT))
        ptr = PointerValue(0x1000, 4)
        data = c.repify(pty, MVPointer(QualType(_INT), ptr))
        back = c.abstify(pty, data)
        assert isinstance(back, MVPointer)
        assert back.ptr.addr == 0x1000
        assert back.ptr.prov == 4

    def test_pointer_read_as_integers_carries_provenance(self):
        # Q13/Q14: copying the bytes through uchar reads keeps the
        # provenance on every byte.
        c = codec()
        pty = Pointer(QualType(_INT))
        ptr = PointerValue(0x2000, 7)
        data = c.repify(pty, MVPointer(QualType(_INT), ptr))
        for b in data:
            one = c.abstify(_UCHAR, [b])
            assert one.ival.prov == 7

    def test_shuffled_pointer_bytes_lose_fragment(self):
        c = codec()
        pty = Pointer(QualType(_INT))
        ptr = PointerValue(0x2000, 7)
        data = c.repify(pty, MVPointer(QualType(_INT), ptr))
        shuffled = list(reversed(data))
        back = c.abstify(pty, shuffled)
        # Same single provenance, but the address is garbled.
        assert back.ptr.prov == 7
        assert back.ptr.addr != ptr.addr


class TestAggregates:
    def _struct(self):
        tags = TagEnv()
        tag = tags.fresh_tag("s", False)
        tags.define(tag, [Member("c", QualType(Integer(IntKind.CHAR))),
                          Member("i", QualType(_INT))])
        return ValueCodec(LP64, tags), StructRef(tag), tags

    def test_struct_roundtrip(self):
        c, ref, tags = self._struct()
        mv = MVStruct(ref.tag, (
            ("c", MVInteger(Integer(IntKind.CHAR), IntegerValue(1))),
            ("i", MVInteger(_INT, IntegerValue(2)))))
        data = c.repify(ref, mv)
        assert len(data) == 8
        back = c.abstify(ref, data)
        values = dict(back.members)
        assert values["c"].ival.value == 1
        assert values["i"].ival.value == 2

    def test_struct_padding_unspecified(self):
        c, ref, tags = self._struct()
        mv = MVStruct(ref.tag, (
            ("c", MVInteger(Integer(IntKind.CHAR), IntegerValue(1))),
            ("i", MVInteger(_INT, IntegerValue(2)))))
        data = c.repify(ref, mv)
        assert data[1].is_unspecified  # §2.5: repify writes
        assert data[2].is_unspecified  # unspecified over padding
        assert data[3].is_unspecified

    def test_array_roundtrip(self):
        c = codec()
        arr = Array(QualType(_INT), 3)
        mv = MVArray(_INT, tuple(
            MVInteger(_INT, IntegerValue(i * 10)) for i in range(3)))
        back = c.abstify(arr, c.repify(arr, mv))
        assert [e.ival.value for e in back.elems] == [0, 10, 20]

    def test_zero_value_struct(self):
        c, ref, tags = self._struct()
        zv = zero_value(ref, LP64, tags)
        values = dict(zv.members)
        assert values["c"].ival.value == 0
        assert values["i"].ival.value == 0
