"""The tvc translation validator (paper §6)."""

import pytest

from repro.tvc import validate
from repro.tvc.minir import IRBlock, IRFunction, IRInstr, IRTrap, run_ir


class TestMiniIR:
    def _fn(self, instrs):
        fn = IRFunction("main")
        fn.block("entry").instrs.extend(instrs)
        return fn

    def test_const_ret(self):
        fn = self._fn([IRInstr("const", "a", [5]),
                       IRInstr("ret", None, ["a"])])
        assert run_ir(fn) == 5

    def test_arith(self):
        fn = self._fn([
            IRInstr("const", "a", [6]),
            IRInstr("const", "b", [7]),
            IRInstr("mul", "c", ["a", "b"]),
            IRInstr("ret", None, ["c"])])
        assert run_ir(fn) == 42

    def test_nsw_overflow_traps(self):
        fn = self._fn([
            IRInstr("const", "a", [2**31 - 1]),
            IRInstr("const", "b", [1]),
            IRInstr("add", "c", ["a", "b"]),
            IRInstr("ret", None, ["c"])])
        with pytest.raises(IRTrap):
            run_ir(fn)

    def test_sdiv_zero_traps(self):
        fn = self._fn([
            IRInstr("const", "a", [1]),
            IRInstr("const", "b", [0]),
            IRInstr("sdiv", "c", ["a", "b"]),
            IRInstr("ret", None, ["c"])])
        with pytest.raises(IRTrap):
            run_ir(fn)

    def test_uninitialised_slot_traps(self):
        fn = self._fn([
            IRInstr("alloca", "s", []),
            IRInstr("load", "v", ["s"]),
            IRInstr("ret", None, ["v"])])
        with pytest.raises(IRTrap):
            run_ir(fn)

    def test_branching(self):
        fn = IRFunction("main")
        fn.block("entry").instrs.extend([
            IRInstr("const", "a", [1]),
            IRInstr("condbr", None, ["a", "yes", "no"])])
        fn.block("yes").instrs.extend([
            IRInstr("const", "r", [10]), IRInstr("ret", None, ["r"])])
        fn.block("no").instrs.extend([
            IRInstr("const", "r2", [20]),
            IRInstr("ret", None, ["r2"])])
        assert run_ir(fn) == 10


class TestValidation:
    def test_straightline(self):
        r = validate("int main(void){ int x = 3; int y = 4; "
                     "return x*x + y*y; }")
        assert r.supported and r.validated
        assert r.ir_result == "ret:25"

    def test_loop(self):
        r = validate("int main(void){ int s = 0; int i = 1; "
                     "while (i <= 10) { s = s + i; i = i + 1; } "
                     "return s; }")
        assert r.validated and r.ir_result == "ret:55"

    def test_if_else(self):
        r = validate("int main(void){ int a = 5; "
                     "if (a > 3) { a = 100; } else { a = 200; } "
                     "return a; }")
        assert r.validated and r.ir_result == "ret:100"

    def test_ub_refines_to_anything(self):
        r = validate("int main(void){ int x = 2147483647; "
                     "return x + 1; }")
        assert r.validated  # Cerberus UB licenses the IR trap

    def test_division_ub(self):
        r = validate("int main(void){ int d = 0; return 7 / d; }")
        assert r.validated
        assert r.ir_result.startswith("trap:")

    def test_unsupported_io(self):
        r = validate('#include <stdio.h>\n'
                     'int main(void){ printf("x"); return 0; }')
        assert not r.supported

    def test_unsupported_pointers(self):
        r = validate("int main(void){ int x = 1; int *p = &x; "
                     "return *p; }")
        assert not r.supported

    def test_unsupported_multiple_functions(self):
        r = validate("int f(void){ return 1; } "
                     "int main(void){ return f(); }")
        assert not r.supported

    def test_exit_code_truncation(self):
        # Exit codes observable mod 256 on both sides.
        r = validate("int main(void){ return 300; }")
        assert r.validated and r.ir_result == "ret:44"

    def test_ir_pretty_prints(self):
        r = validate("int main(void){ return 1; }")
        assert "define i32 @main()" in r.ir_text
