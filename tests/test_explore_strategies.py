"""Pluggable search strategies: selection, 5-model coverage, and
seeded determinism (paper §5.1's "exhaustive search ... or
pseudorandomly explore single execution paths", generalised)."""

import pytest

from repro.dynamics.explore import STRATEGIES, PathNode, make_strategy
from repro.dynamics.explore.strategies import (
    BfsStrategy, CoverageStrategy, DfsStrategy, RandomStrategy,
)
from repro.pipeline import MODELS, compile_c, explore_c, explore_many

TWO_ORDERS = r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); putchar('\n'); return 0; }
'''


class TestRegistry:
    def test_all_four_registered(self):
        assert sorted(STRATEGIES) == ["bfs", "coverage", "dfs",
                                      "random"]

    def test_make_strategy_resolves(self):
        assert isinstance(make_strategy("dfs"), DfsStrategy)
        assert isinstance(make_strategy("bfs"), BfsStrategy)
        assert isinstance(make_strategy("random", 1), RandomStrategy)
        assert isinstance(make_strategy("coverage"), CoverageStrategy)
        inst = BfsStrategy()
        assert make_strategy(inst) is inst

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            make_strategy("zigzag")
        with pytest.raises(ValueError):
            explore_c("int main(void){ return 0; }",
                      strategy="zigzag")

    def test_frontier_orders(self):
        shallow = PathNode((0,))
        deep = PathNode((0, 1, 1))
        dfs = make_strategy("dfs")
        dfs.push(shallow)
        dfs.push(deep)
        assert dfs.pop() is deep          # LIFO
        bfs = make_strategy("bfs")
        bfs.push(deep)
        bfs.push(shallow)
        assert bfs.pop() is shallow       # shortest prefix first
        cov = make_strategy("coverage")
        seen = PathNode((1,), flip=("nd", 1))
        fresh = PathNode((2,), flip=("unseq", 1))
        cov.push(seen)
        cov.push(fresh)
        assert cov.pop() is seen          # both fresh: FIFO tiebreak
        cov.push(PathNode((3,), flip=("nd", 1)))
        assert cov.pop() is fresh         # ("nd", 1) already flipped

    def test_drain_empties_frontier(self):
        s = make_strategy("random", seed=0)
        nodes = [PathNode((i,)) for i in range(5)]
        for n in nodes:
            s.push(n)
        drained = s.drain()
        assert len(s) == 0
        assert sorted(n.choices for n in drained) == \
            sorted(n.choices for n in nodes)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
class TestStrategiesAcrossModels:
    def test_five_model_exploration(self, strategy):
        # Every strategy, under every registered memory object model,
        # finds exactly the two evaluation orders.
        results = explore_many(TWO_ORDERS, strategy=strategy, seed=5,
                               max_paths=300)
        assert sorted(results) == sorted(MODELS)
        for model, res in results.items():
            assert res.exhausted, (strategy, model)
            outs = {o.stdout for o in res.outcomes
                    if o.status in ("done", "exit")}
            assert outs == {"ab\n", "ba\n"}, (strategy, model)


class TestDeterminism:
    def _multiset(self, res):
        return sorted(o.summary() for o in res.outcomes)

    @pytest.mark.parametrize("strategy", ["random", "coverage"])
    def test_same_seed_same_outcomes(self, strategy):
        a = explore_c(TWO_ORDERS, strategy=strategy, seed=42,
                      max_paths=40)
        b = explore_c(TWO_ORDERS, strategy=strategy, seed=42,
                      max_paths=40)
        assert a.paths_run == b.paths_run
        assert self._multiset(a) == self._multiset(b)

    def test_strategies_agree_on_exhausted_space(self):
        keys = None
        for strategy in sorted(STRATEGIES):
            res = explore_c(TWO_ORDERS, strategy=strategy, seed=1,
                            max_paths=1000)
            assert res.exhausted, strategy
            if keys is None:
                keys = res.behaviour_keys()
            else:
                assert res.behaviour_keys() == keys, strategy


class TestDivergenceDiscard:
    def test_run_flags_divergence(self):
        # Replaying a stale choice value against a smaller arity must
        # surface on the Outcome instead of silently mis-replaying.
        from repro.dynamics.driver import Oracle
        program = compile_c(TWO_ORDERS)
        out = program.run("concrete", oracle=Oracle([9]))
        assert out.diverged
        clean = program.run("concrete", oracle=Oracle([1]))
        assert not clean.diverged

    def test_explorer_discards_diverged_paths(self):
        from repro.dynamics.driver import Oracle, Outcome
        from repro.dynamics.explore import explore_all

        class FakeDriver:
            def __init__(self, oracle):
                self.oracle = oracle
                self.deadline = None

            def run(self, entry="main"):
                self.oracle.diverged = True
                return Outcome("done", exit_code=0, diverged=True)

        res = explore_all(FakeDriver, max_paths=10)
        assert res.paths_run == 1
        assert res.diverged == 1
        assert res.outcomes == []       # discarded, not mis-reported
        assert not res.exhausted        # a subtree was abandoned
