"""Unit tests for the preprocessor (ISO C11 §6.10)."""

import pytest

from repro.cpp import preprocess
from repro.errors import PreprocessorError
from repro.lex import TokenKind


def texts(src, **kw):
    return [t.text for t in preprocess(src, **kw)
            if t.kind is not TokenKind.EOF]


class TestObjectMacros:
    def test_simple_define(self):
        assert texts("#define N 42\nN") == ["42"]

    def test_redefinition_same_ok(self):
        assert texts("#define N 1\n#define N 1\nN") == ["1"]

    def test_redefinition_different_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define N 1\n#define N 2\n")

    def test_undef(self):
        assert texts("#define N 1\n#undef N\nN") == ["N"]

    def test_chained_expansion(self):
        assert texts("#define A B\n#define B 7\nA") == ["7"]

    def test_self_reference_blue_paint(self):
        assert texts("#define A A\nA") == ["A"]

    def test_mutual_recursion_stops(self):
        assert texts("#define A B\n#define B A\nA") == ["A"]


class TestFunctionMacros:
    def test_basic(self):
        assert texts("#define SQ(x) ((x)*(x))\nSQ(3)") == \
            list("((3)*(3))")

    def test_name_without_parens_not_expanded(self):
        assert texts("#define F(x) x\nF") == ["F"]

    def test_two_params(self):
        assert texts("#define ADD(a,b) a+b\nADD(1,2)") == \
            ["1", "+", "2"]

    def test_nested_call_argument(self):
        assert texts("#define ID(x) x\nID(f(1,2))") == \
            ["f", "(", "1", ",", "2", ")"]

    def test_argument_prescan(self):
        assert texts("#define ONE 1\n#define ID(x) x\nID(ONE)") == ["1"]

    def test_stringise(self):
        out = [t for t in preprocess("#define S(x) #x\nS(a b)")
               if t.kind is TokenKind.STRING]
        assert out[0].value == b"a b"

    def test_paste(self):
        assert texts("#define CAT(a,b) a##b\nCAT(foo,bar)") == \
            ["foobar"]

    def test_paste_numbers(self):
        assert texts("#define CAT(a,b) a##b\nCAT(1,2)") == ["12"]

    def test_variadic(self):
        assert texts("#define V(...) __VA_ARGS__\nV(1, 2)") == \
            ["1", ",", "2"]

    def test_empty_args(self):
        assert texts("#define F() 9\nF()") == ["9"]


class TestConditionals:
    def test_ifdef(self):
        assert texts("#define X\n#ifdef X\nyes\n#endif") == ["yes"]

    def test_ifndef(self):
        assert texts("#ifndef X\nyes\n#endif") == ["yes"]

    def test_if_arith(self):
        assert texts("#if 2 + 2 == 4\nok\n#endif") == ["ok"]

    def test_if_defined(self):
        src = "#define A 1\n#if defined(A) && !defined(B)\nok\n#endif"
        assert texts(src) == ["ok"]

    def test_else(self):
        assert texts("#if 0\na\n#else\nb\n#endif") == ["b"]

    def test_elif_chain(self):
        src = "#define N 2\n#if N==1\na\n#elif N==2\nb\n#elif N==3\n" \
              "c\n#else\nd\n#endif"
        assert texts(src) == ["b"]

    def test_nested_dead_code(self):
        src = "#if 0\n#if 1\nx\n#endif\ny\n#endif\nz"
        assert texts(src) == ["z"]

    def test_unknown_identifier_is_zero(self):
        assert texts("#if UNDEFINED\nx\n#else\ny\n#endif") == ["y"]

    def test_ternary(self):
        assert texts("#if 1 ? 5 : 0\nok\n#endif") == ["ok"]

    def test_unbalanced_endif(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            preprocess("#error nope")

    def test_error_in_dead_branch_ignored(self):
        assert texts("#if 0\n#error nope\n#endif\nok") == ["ok"]


class TestIncludes:
    def test_builtin_header(self):
        out = texts("#include <stddef.h>\nsize_t")
        # size_t is a typedef name in the header plus our use.
        assert out.count("size_t") >= 2

    def test_include_guard_idempotent(self):
        one = texts("#include <limits.h>")
        two = texts("#include <limits.h>\n#include <limits.h>")
        assert one == two

    def test_missing_header(self):
        with pytest.raises(PreprocessorError):
            preprocess("#include <nonexistent.h>")

    def test_user_header(self):
        out = texts('#include "my.h"\nVAL',
                    extra_headers={"my.h": "#define VAL 123\n"})
        assert out == ["123"]

    def test_pragma_ignored(self):
        assert texts("#pragma once\nx") == ["x"]


class TestPredefined:
    def test_stdc(self):
        assert texts("__STDC__") == ["1"]

    def test_line(self):
        assert texts("a\nb __LINE__") == ["a", "b", "2"]
