"""The farm pool and campaign drivers: sharding, parallel sweeps,
timeouts, campaign reports, and the re-backed batch consumers."""

import json

import pytest

from repro.csmith import validate_programs
from repro.cli import main as cli_main
from repro.farm.campaign import csmith_campaign, suite_campaign
from repro.farm.pool import (
    SweepTask, run_tasks, shard_select, sweep,
)
from repro.pipeline import MODELS, clear_compile_cache, compile_c
from repro.testsuite import TESTS, run_suite_many

HELLO = ('#include <stdio.h>\n'
         'int main(void){ printf("hi\\n"); return 0; }\n')
RACY = r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); return 0; }
'''


class TestSharding:
    def test_shards_partition_exactly(self):
        items = list(range(13))
        shards = [shard_select(items, i, 4) for i in range(4)]
        flat = sorted(x for s in shards for x in s)
        assert flat == items
        assert shard_select(items, 0, 4) == [0, 4, 8, 12]

    def test_single_shard_is_identity(self):
        assert shard_select(["a", "b"], 0, 1) == ["a", "b"]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_select([1], 2, 2)
        with pytest.raises(ValueError):
            shard_select([1], 0, 0)


class TestSweep:
    def test_serial_and_parallel_agree(self):
        programs = [("hello", HELLO),
                    ("ret3", "int main(void){ return 3; }")]
        serial = sweep(programs, models=["concrete", "provenance"],
                       jobs=1)
        parallel = sweep(programs, models=["concrete", "provenance"],
                         jobs=2)
        assert [r.name for r in parallel] == ["hello", "ret3"]
        for s, p in zip(serial, parallel):
            assert s.name == p.name
            assert {m: (v.status, v.exit_code, v.stdout)
                    for m, v in s.data["verdicts"].items()} == \
                   {m: (v.status, v.exit_code, v.stdout)
                    for m, v in p.data["verdicts"].items()}

    def test_explore_mode(self):
        [result] = sweep([("racy", RACY)], models=["concrete"],
                         jobs=1, mode="explore")
        e = result.data["explorations"]["concrete"]
        assert e.paths_run >= 2
        assert not e.has_ub
        assert any("'ab'" in b for b in e.behaviours)
        assert any("'ba'" in b for b in e.behaviours)

    def test_compile_error_is_a_result_not_a_crash(self):
        [result] = sweep([("bad", "int main(void){ return x; }")],
                         models=["concrete"], jobs=1)
        assert not result.ok
        assert "DesugarError" in result.error

    def test_sharded_sweep(self):
        programs = [(f"p{i}", f"int main(void){{ return {i}; }}")
                    for i in range(4)]
        shard0 = sweep(programs, models=["concrete"], jobs=1,
                       shard_index=0, shard_count=2)
        shard1 = sweep(programs, models=["concrete"], jobs=1,
                       shard_index=1, shard_count=2)
        assert [r.name for r in shard0] == ["p0", "p2"]
        assert [r.name for r in shard1] == ["p1", "p3"]

    def test_per_task_hard_timeout(self):
        spin = "int main(void){ while (1) ; return 0; }"
        programs = [("spin", spin), ("quick", HELLO)]
        results = sweep(programs, models=["concrete"], jobs=2,
                        max_steps=2_000_000_000, task_timeout=1.0)
        spin_r, quick_r = results
        assert spin_r.timed_out and not spin_r.ok
        assert "1s" in spin_r.error
        # the wedged worker must not take the healthy task with it
        assert quick_r.ok
        assert quick_r.data["verdicts"]["concrete"].stdout == "hi\n"

    def test_queued_tasks_survive_a_fully_wedged_pool(self):
        # Both workers wedge; the queued healthy task must be resumed
        # on a fresh pool, not falsely reported as timed out.
        spin = "int main(void){ while (1) ; return 0; }"
        programs = [("spin-a", spin), ("spin-b", spin),
                    ("quick", HELLO)]
        results = sweep(programs, models=["concrete"], jobs=2,
                        max_steps=2_000_000_000, task_timeout=1.0)
        by_name = {r.name: r for r in results}
        assert by_name["spin-a"].timed_out
        assert by_name["spin-b"].timed_out
        assert by_name["quick"].ok and not by_name["quick"].timed_out
        assert by_name["quick"].data["verdicts"]["concrete"] \
            .stdout == "hi\n"

    def test_store_none_falls_back_to_installed_store(self, tmp_path):
        # set_artifact_store + a farm run with no store= must compose:
        # the run uses (and fills) the globally installed store.
        from repro.farm.store import ArtifactStore
        from repro.pipeline import set_artifact_store
        store = ArtifactStore(tmp_path / "global")
        previous = set_artifact_store(store)
        try:
            clear_compile_cache()
            sweep([("p", HELLO)], models=["concrete"], jobs=1)
            assert store.stats()["stores"] == 1
            clear_compile_cache()
            [r] = sweep([("p", HELLO)], models=["concrete"], jobs=1)
            assert r.stats["store_hits"] == 1
            assert r.stats["translations"] == 0
            # and jobs>1 workers inherit it too
            clear_compile_cache()
            [r2] = sweep([("p", HELLO), ("q", HELLO + " ")],
                         models=["concrete"], jobs=2)[:1]
            assert r2.stats["translations"] == 0
            assert r2.stats["store_hits"] == 1
        finally:
            set_artifact_store(previous)
            clear_compile_cache()

    def test_cooperative_exploration_deadline(self):
        program = compile_c(RACY)
        res = program.explore("concrete", max_paths=500,
                              deadline_s=0.0)
        assert not res.exhausted
        assert res.paths_run == 0


class TestSuiteCampaign:
    NAMES = sorted(TESTS)[:8]

    def test_matches_serial_run_suite_many(self):
        baseline = run_suite_many(["concrete", "strict"],
                                  names=self.NAMES)
        suite, campaign = suite_campaign(["concrete", "strict"],
                                         self.NAMES, jobs=2)
        base_key = {(r.name, r.model): (r.verdict, r.matches)
                    for r in baseline.results}
        farm_key = {(r.name, r.model): (r.verdict, r.matches)
                    for r in suite.results}
        assert base_key == farm_key
        assert campaign.programs == len(self.NAMES)
        assert campaign.jobs == 2
        assert campaign.cache["translations"] >= 1

    def test_run_suite_many_jobs_kwarg_routes_to_farm(self):
        baseline = run_suite_many(["concrete"], names=self.NAMES)
        farmed = run_suite_many(["concrete"], names=self.NAMES,
                                jobs=2)
        assert {(r.name, r.verdict) for r in baseline.results} == \
            {(r.name, r.verdict) for r in farmed.results}

    def test_sharded_suites_cover_the_corpus(self):
        rows = []
        for i in range(3):
            report = run_suite_many(["concrete"], names=self.NAMES,
                                    shard=(i, 3))
            rows.extend(r.name for r in report.results)
        assert sorted(rows) == self.NAMES

    def test_report_json_round_trips(self, tmp_path):
        _, campaign = suite_campaign(["concrete"], self.NAMES[:3],
                                     jobs=1)
        path = tmp_path / "report.json"
        campaign.write(path)
        data = json.loads(path.read_text())
        assert data["campaign"] == "suite"
        assert data["programs"] == 3
        assert {"translations", "store_hits", "memory_hit_rate"} \
            <= set(data["cache"])
        assert len(data["results"]) == 3
        for entry in data["results"]:
            assert entry["verdicts"]


class TestZeroTranslationWarmStore:
    """The acceptance criterion: a 5-model suite sweep run twice with
    a store performs zero front-end translations on the second run."""

    NAMES = sorted(TESTS)[:6]

    def test_second_pass_is_execution_only(self, tmp_path):
        store_dir = tmp_path / "warmstore"
        models = list(MODELS)
        clear_compile_cache()
        first_suite, first = suite_campaign(models, self.NAMES,
                                            jobs=1, store=store_dir)
        assert first.cache["translations"] >= len(self.NAMES)
        assert first.cache["store_puts"] >= len(self.NAMES)

        clear_compile_cache()      # a fresh process would start cold
        second_suite, second = suite_campaign(models, self.NAMES,
                                              jobs=1, store=store_dir)
        assert second.cache["translations"] == 0
        assert second.cache["store_hits"] >= len(self.NAMES)
        assert second.cache["store_hit_rate"] == 1.0
        assert {(r.name, r.model, r.verdict)
                for r in first_suite.results} == \
            {(r.name, r.model, r.verdict)
             for r in second_suite.results}


class TestCsmithCampaign:
    def test_explicit_seed_list(self):
        report = validate_programs(seeds=[9000, 9005, 9010], size=6)
        assert report.total == 3
        assert report.disagree == 0 and report.failed == 0

    def test_seed_list_equals_seed_base_range(self):
        by_count = validate_programs(3, size=6, seed_base=9100)
        by_seeds = validate_programs(seeds=[9100, 9101, 9102], size=6)
        assert by_count.summary() == by_seeds.summary()

    def test_needs_count_or_seeds(self):
        with pytest.raises(ValueError):
            validate_programs()

    def test_sharded_workers_partition_reproducibly(self):
        seeds = [9200 + i for i in range(6)]
        shard_totals = []
        for i in range(3):
            report = validate_programs(seeds=seeds, size=6,
                                       shard=(i, 3))
            shard_totals.append(report.total)
        assert shard_totals == [2, 2, 2]

    def test_parallel_campaign_agrees_with_serial(self):
        seeds = [9300, 9301, 9302, 9303]
        serial, _ = csmith_campaign(seeds=seeds, size=6,
                                    models=["concrete"], jobs=1)
        parallel, camp = csmith_campaign(seeds=seeds, size=6,
                                         models=["concrete"], jobs=2)
        assert serial.summary() == parallel.summary()
        assert camp.summary["agree"] == parallel.agree
        assert [e["seed"] for e in camp.results] == seeds


class TestFarmCli:
    def _write(self, tmp_path, source):
        f = tmp_path / "prog.c"
        f.write_text(source)
        return str(f)

    def test_farm_suite_cli(self, tmp_path, capsys):
        names = ",".join(sorted(TESTS)[:3])
        report = tmp_path / "suite.json"
        code = cli_main(["farm", "suite", "--models", "concrete",
                         "--tests", names, "--report", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass" in out
        assert json.loads(report.read_text())["campaign"] == "suite"

    def test_farm_csmith_cli(self, capsys):
        code = cli_main(["farm", "csmith", "--seeds", "9400,9401",
                         "--size", "6"])
        assert code == 0
        assert "2 tests: 2 agree" in capsys.readouterr().out

    def test_farm_sweep_cli(self, tmp_path, capsys):
        path = self._write(tmp_path, HELLO)
        code = cli_main(["farm", "sweep", path,
                         "--models", "concrete,gcc"])
        assert code == 0
        assert "stdout='hi\\n'" in capsys.readouterr().out

    def test_single_file_store_flag(self, tmp_path, capsys):
        path = self._write(tmp_path, HELLO)
        store = str(tmp_path / "store")
        try:
            assert cli_main([path, "--store", store]) == 0
            clear_compile_cache()
            assert cli_main([path, "--store", store,
                             "--models", "concrete,strict"]) == 0
        finally:
            from repro.pipeline import set_artifact_store
            set_artifact_store(None)
            clear_compile_cache()
        out = capsys.readouterr().out
        assert "concrete" in out and "strict" in out

    def test_single_file_shard_flag(self, tmp_path, capsys):
        path = self._write(tmp_path, HELLO)
        assert cli_main([path, "--models", "concrete,strict",
                         "--shard", "0/2"]) == 0
        out = capsys.readouterr().out
        assert "concrete" in out and "strict" not in out

    def test_farm_csmith_needs_corpus(self, capsys):
        assert cli_main(["farm", "csmith"]) == 2
        assert "--count or --seeds" in capsys.readouterr().err
