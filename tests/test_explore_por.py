"""Sleep-set partial-order reduction: soundness on a golden fragment
set (identical ``distinct()`` behaviours, strictly fewer paths on
independent interleavings), UB-site-aware deduplication, and the
cooperative in-path deadline."""

import time

import pytest

from repro.dynamics.explore.por import (
    PURE, PathNode, footprints_conflict, next_transition,
)
from repro.pipeline import compile_c, explore_c

# The golden fragment set: (name, source, expect_strict_reduction).
# Programs with conflicting accesses pin that POR does not over-prune
# — both orders / the race verdict must survive.
GOLDEN = [
    ("independent_stores",
     "int a, b; int main(void){ (a=1) + (b=2); return a+b-3; }",
     True),
    ("independent_read_write",
     "int a = 1, b = 2, x, y; "
     "int main(void){ (x=a) + (y=b); return x+y-3; }",
     True),
    ("io_interleaving",
     '#include <stdio.h>\n'
     'int pr(int c){ putchar(c); return 0; }\n'
     'int main(void){ pr(97)+pr(98); putchar(10); return 0; }',
     True),
    ("unsequenced_race",
     "int main(void){ int x; int y = (x = 1) + (x = 2); return 0; }",
     False),
    ("write_read_race",
     "int main(void){ int x = 0; int y = (x = 1) + x; return y; }",
     False),
    ("indeterminately_sequenced_calls",
     "int g; int set(int v){ g = v; return v; } "
     "int main(void){ return set(1) + set(2) - 3; }",
     False),
]


class TestPorSoundness:
    @pytest.mark.parametrize("name,source,strict",
                             [(n, s, r) for n, s, r in GOLDEN])
    def test_same_behaviours_fewer_paths(self, name, source, strict):
        base = explore_c(source, model="concrete", max_paths=10_000)
        por = explore_c(source, model="concrete", max_paths=10_000,
                        por=True)
        assert base.exhausted and por.exhausted, name
        # Exactly the unpruned distinct() behaviour set...
        assert por.behaviour_keys() == base.behaviour_keys(), name
        # ...with never more, and on commuting fragments strictly
        # fewer, paths run.
        assert por.paths_run <= base.paths_run, name
        if strict:
            assert por.paths_run < base.paths_run, name
            assert por.pruned > 0, name

    def test_por_keeps_race_verdict(self):
        res = explore_c("int main(void){ int x; "
                        "int y = (x = 1) + (x = 2); return 0; }",
                        por=True, max_paths=100)
        assert res.has_ub()
        assert "Unsequenced_race" in res.ub_names()

    def test_por_keeps_both_call_orders(self):
        res = explore_c(
            '#include <stdio.h>\n'
            'int pr(int c){ putchar(c); return 0; }\n'
            'int main(void){ pr(97)+pr(98); putchar(10); return 0; }',
            por=True, max_paths=500)
        outs = {o.stdout for o in res.outcomes
                if o.status in ("done", "exit")}
        assert outs == {"ab\n", "ba\n"}

    def test_por_across_models(self):
        # POR composes with the cross-model methodology: every model
        # sees the same distinct behaviours pruned or not.
        from repro.pipeline import explore_many
        src = "int a, b; int main(void){ (a=1)+(b=2); return a+b-3; }"
        base = explore_many(src, max_paths=2000)
        por = explore_many(src, max_paths=2000, por=True)
        for model in base:
            assert base[model].behaviour_keys() == \
                por[model].behaviour_keys(), model
            assert por[model].paths_run < base[model].paths_run, model


class TestPorPrimitives:
    def test_footprint_conflicts(self):
        assert footprints_conflict(0, 4, True, 2, 4, False)
        assert not footprints_conflict(0, 4, False, 2, 4, False)
        assert not footprints_conflict(0, 4, True, 4, 4, True)
        # Zero-size (pure completion) conflicts with nothing.
        assert not footprints_conflict(0, 0, False, 0, 8, True)

    def test_next_transition_attribution(self):
        from repro.memory.base import Footprint
        events = [
            ("choose", "unseq", 2, 0, (1, (0, 1))),
            ("act", "store", Footprint(100, 4), True, ((1, 0),), False),
            ("act", "store", Footprint(200, 4), True, ((1, 1),), False),
        ]
        assert next_transition(events, 0, 1, 1, True) == (200, 4, True)
        assert next_transition(events, 0, 1, 0, True) == (100, 4, True)

    def test_next_transition_barrier_blocks(self):
        from repro.memory.base import Footprint
        events = [
            ("choose", "unseq", 2, 0, (1, (0, 1))),
            ("act", "raw", None, False, (), True),
            ("act", "store", Footprint(200, 4), True, ((1, 1),), False),
        ]
        assert next_transition(events, 0, 1, 1, True) is None

    def test_next_transition_pure_completion(self):
        # A later frame choice without the child proves it completed
        # without performing any action.
        events = [
            ("choose", "unseq", 2, 0, (1, (0, 1))),
            ("choose", "unseq", 1, 0, (1, (1,))),
        ]
        assert next_transition(events, 0, 1, 0, False) == PURE
        # End of a completed run proves the same.
        assert next_transition(events[:1], 0, 1, 0, True) == PURE
        assert next_transition(events[:1], 0, 1, 0, False) is None

    def test_pathnode_picklable(self):
        import pickle
        node = PathNode((0, 1), ((1, 0, 4096, 4, True),), ("unseq", 1))
        assert pickle.loads(pickle.dumps(node)) == node


class TestDistinctUbSites:
    def test_same_ub_name_different_sites_kept(self):
        # The same UB at two program points is two behaviours: the
        # dedup key includes the UB location.
        res = explore_c(r'''
int main(void) {
    int x = 0;
    int a = (1 / x)
          + (2 / x);
    return a;
}''', max_paths=100)
        assert res.ub_names() == ["Division_by_zero"]
        distinct = res.distinct()
        assert len(distinct) == 2
        assert len({str(o.loc) for o in distinct}) == 2
        # The printable behaviours carry the site too, so the two do
        # not collapse back into one line in reports.
        assert len([b for b in res.behaviours()
                    if "Division_by_zero @" in b]) == 2

    def test_identical_sites_still_collapse(self):
        res = explore_c(r'''
int f(void) { return 3; }
int main(void) { return f() + f() - 6; }''', max_paths=200)
        assert len(res.distinct()) == 1


class TestInPathDeadline:
    def test_single_long_path_times_out_at_deadline(self):
        # The deadline is threaded into the Driver step loop: one
        # non-terminating path returns status="timeout" at the
        # deadline instead of running max_steps to the bitter end.
        start = time.monotonic()
        res = explore_c("int main(void){ while (1) ; return 0; }",
                        max_paths=10, max_steps=200_000_000,
                        deadline_s=0.3)
        wall = time.monotonic() - start
        assert wall < 10.0
        assert res.paths_run == 1
        assert res.outcomes[0].status == "timeout"

    def test_deadline_also_bounds_enumeration(self):
        src = ('#include <stdio.h>\n'
               'int pr(int c){ putchar(c); return 0; }\n'
               'int main(void){ pr(97)+pr(98); pr(99)+pr(100); '
               'pr(101)+pr(102); return 0; }')
        res = explore_c(src, max_paths=100_000, deadline_s=0.0)
        assert not res.exhausted
        assert res.paths_run <= 1
