"""The built-in standard-library headers: every one preprocesses,
parses, and provides what it declares."""

import pytest

from repro.cpp.headers import BUILTIN_HEADERS
from repro.pipeline import compile_c, run_c


@pytest.mark.parametrize("header", sorted(BUILTIN_HEADERS))
def test_header_compiles_alone(header):
    compile_c(f"#include <{header}>\nint main(void) {{ return 0; }}")


def test_all_headers_together():
    includes = "\n".join(f"#include <{h}>"
                         for h in sorted(BUILTIN_HEADERS))
    compile_c(includes + "\nint main(void) { return 0; }")


class TestLimits:
    def test_int_limits(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <limits.h>
int main(void) {
    printf("%d %d %u\n", INT_MIN, INT_MAX, UINT_MAX);
    printf("%d %d %d\n", CHAR_BIT, SCHAR_MIN, SCHAR_MAX);
    return 0;
}''')
        assert out.stdout == ("-2147483648 2147483647 4294967295\n"
                              "8 -128 127\n")

    def test_long_limits_lp64(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <limits.h>
int main(void) {
    printf("%d %d\n", LONG_MAX == 9223372036854775807L,
           LLONG_MIN < -9223372036854775807LL);
    return 0;
}''')
        assert out.stdout == "1 1\n"


class TestStdint:
    def test_fixed_width_sizes(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdint.h>
int main(void) {
    printf("%d %d %d %d %d\n",
           (int)sizeof(int8_t), (int)sizeof(int16_t),
           (int)sizeof(int32_t), (int)sizeof(int64_t),
           (int)sizeof(uintptr_t));
    return 0;
}''')
        assert out.stdout == "1 2 4 8 8\n"

    def test_fixed_width_limits(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdint.h>
int main(void) {
    printf("%d %d %u\n", INT8_MIN, INT16_MAX, UINT32_MAX);
    return 0;
}''')
        assert out.stdout == "-128 32767 4294967295\n"


class TestStddef:
    def test_null_and_sizet(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stddef.h>
int main(void) {
    int *p = NULL;
    size_t n = sizeof(p);
    printf("%d %zu\n", p == 0, n);
    return 0;
}''')
        assert out.stdout == "1 8\n"

    def test_offsetof(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stddef.h>
struct s { char c; int i; long l; };
int main(void) {
    printf("%zu %zu %zu\n", offsetof(struct s, c),
           offsetof(struct s, i), offsetof(struct s, l));
    return 0;
}''')
        assert out.stdout == "0 4 8\n"


class TestStdbool:
    def test_bool_macros(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdbool.h>
int main(void) {
    bool t = true, f = false;
    printf("%d %d %d\n", t, f, sizeof(bool) == 1);
    return 0;
}''')
        assert out.stdout == "1 0 1\n"
