"""The Csmith-like generator and differential validation (paper §6)."""

from hypothesis import given, settings, strategies as st

from repro.csmith import generate_program, validate_programs
from repro.pipeline import run_c


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_program(7)
        b = generate_program(7)
        assert a.source == b.source
        assert a.expected_stdout == b.expected_stdout

    def test_different_seeds_differ(self):
        assert generate_program(1).source != generate_program(2).source

    def test_has_checksum(self):
        p = generate_program(3)
        assert "checksum" in p.source
        assert p.expected_stdout.count("checksum = ") == 1

    def test_source_is_well_formed_c(self, compile_only):
        for seed in range(20, 26):
            compile_only(generate_program(seed).source)

    @given(st.integers(0, 500))
    @settings(max_examples=12, deadline=None)
    def test_generated_program_matches_mirror(self, seed):
        p = generate_program(seed, size=8)
        out = run_c(p.source, model="concrete", max_steps=3_000_000)
        assert out.status == "done", (seed, out.status, out.ub)
        assert out.stdout == p.expected_stdout, seed

    def test_size_scales(self):
        small = generate_program(5, size=5)
        large = generate_program(5, size=40)
        assert len(large.source) > len(small.source)


class TestValidation:
    def test_small_batch_agrees(self):
        report = validate_programs(15, size=10, seed_base=9000)
        assert report.total == 15
        assert report.disagree == 0
        assert report.failed == 0
        assert report.agree + report.timeout == 15

    def test_agreement_under_provenance_model_too(self):
        # Generated programs are UB-free, so the provenance model must
        # agree with the concrete model on them.
        report = validate_programs(8, size=8, model="provenance",
                                   seed_base=9100)
        assert report.disagree == 0 and report.failed == 0

    def test_summary_format(self):
        report = validate_programs(3, size=5, seed_base=9200)
        assert "3 tests:" in report.summary()
