"""Unit tests for Cabs -> Ail desugaring (paper §5.1)."""

import pytest

from repro.ail import ast as A, desugar
from repro.cparser import parse_text
from repro.ctypes import LP64
from repro.ctypes.types import (
    Array, Function, Integer, IntKind, Pointer, StructRef,
)
from repro.errors import DesugarError, UnsupportedError


def ds(src):
    return desugar(parse_text(src), LP64)


def main_of(prog):
    return prog.functions[prog.main]


class TestScoping:
    def test_unique_symbols_for_shadowing(self):
        prog = ds("int x; int main(void) { int x = 1; return x; }")
        globals_ = [o.sym for o in prog.objects]
        body = main_of(prog).body
        decl = body.items[0]
        assert isinstance(decl, A.SDecl)
        assert decl.sym not in globals_

    def test_undeclared_identifier(self):
        with pytest.raises(DesugarError):
            ds("int main(void) { return y; }")

    def test_function_prototype_merge(self):
        prog = ds("int f(void); int f(void) { return 1; } "
                  "int main(void) { return f(); }")
        fs = [s for s in prog.functions if s.name == "f"]
        assert len(fs) == 1

    def test_enum_constants_become_ints(self):
        prog = ds("enum e { A = 3 }; int main(void) { return A; }")
        ret = main_of(prog).body.items[0]
        assert isinstance(ret, A.SReturn)
        assert isinstance(ret.expr, A.EConstInt)
        assert ret.expr.value == 3

    def test_tentative_definitions_merge(self):
        prog = ds("int x; int x; int main(void) { return x; }")
        assert len([o for o in prog.objects if o.sym.name == "x"]) == 1


class TestTypes:
    def test_long_long(self):
        prog = ds("unsigned long long x;")
        assert prog.objects[0].qty.ty == Integer(IntKind.ULLONG)

    def test_keyword_order_irrelevant(self):
        prog = ds("long unsigned int x; unsigned long y;")
        assert prog.objects[0].qty.ty == prog.objects[1].qty.ty

    def test_bad_combination(self):
        with pytest.raises(DesugarError):
            ds("signed unsigned x;")

    def test_array_size_constant_folded(self):
        prog = ds("int a[2 * 3 + 1];")
        assert prog.objects[0].qty.ty.size == 7

    def test_array_size_from_enum(self):
        prog = ds("enum { N = 4 }; int a[N];")
        assert prog.objects[0].qty.ty.size == 4

    def test_incomplete_array_completed_by_init(self):
        prog = ds("int a[] = { 1, 2, 3 };")
        assert prog.objects[0].qty.ty.size == 3

    def test_string_completes_char_array(self):
        prog = ds('char s[] = "hi";')
        obj = [o for o in prog.objects if o.sym.name == "s"][0]
        assert obj.qty.ty.size == 3

    def test_struct_recursive_pointer(self):
        prog = ds("struct node { int v; struct node *next; };")
        tags = prog.tags.all_tags()
        assert len(tags) == 1
        defn = next(iter(tags.values()))
        assert isinstance(defn.members[1].qty.ty, Pointer)

    def test_struct_vs_union_tag_clash(self):
        with pytest.raises(DesugarError):
            ds("struct t { int x; }; union t u;")

    def test_param_array_decays(self):
        prog = ds("void f(int a[10]) {} ")
        f = [fd for s, fd in prog.functions.items()
             if s.name == "f"][0]
        assert isinstance(f.qty.ty.params[0].ty, Pointer)

    def test_bitfields_desugar_to_members_with_widths(self):
        prog = ds("struct s { int x : 3; unsigned : 2; int : 0; };")
        defn = next(iter(prog.tags.all_tags().values()))
        widths = [(m.name, m.bit_width) for m in defn.members]
        assert widths == [("x", 3), (None, 2), (None, 0)]

    def test_unspecified_size_vla_unsupported(self):
        with pytest.raises(UnsupportedError):
            ds("void f(int n) { int a[*]; }")

    def test_typedef_chains(self):
        prog = ds("typedef int T; typedef T U; U x;")
        assert prog.objects[0].qty.ty == Integer(IntKind.INT)


class TestStatements:
    def test_for_desugars_to_while(self):
        prog = ds("int main(void) { for (int i = 0; i < 3; i++) ; "
                  "return 0; }")
        block = main_of(prog).body.items[0]
        assert isinstance(block, A.SBlock)
        loop = block.items[1]
        assert isinstance(loop, A.SWhile)
        assert loop.step is not None

    def test_do_while_flag(self):
        prog = ds("int main(void) { do ; while (0); return 0; }")
        loop = main_of(prog).body.items[0]
        assert isinstance(loop, A.SWhile)
        assert loop.loc_hint == "do"

    def test_switch_collects_cases(self):
        prog = ds("int main(void) { switch (1) { case 1: return 1; "
                  "case 2: return 2; default: ; } return 0; }")
        sw = main_of(prog).body.items[0]
        assert isinstance(sw, A.SSwitch)
        assert sorted(v for v, _ in sw.cases) == [1, 2]
        assert sw.default is not None

    def test_duplicate_case_rejected(self):
        with pytest.raises(DesugarError):
            ds("int main(void) { switch (1) { case 1: ; case 1: ; } }")

    def test_goto_undefined_label(self):
        with pytest.raises(DesugarError):
            ds("int main(void) { goto nowhere; return 0; }")

    def test_forward_goto_shares_symbol(self):
        prog = ds("int main(void) { goto l; l: return 0; }")
        body = main_of(prog).body
        goto = body.items[0]
        label = body.items[1]
        assert goto.sym == label.sym

    def test_case_outside_switch(self):
        with pytest.raises(DesugarError):
            ds("int main(void) { case 1: return 0; }")


class TestInitializers:
    def test_designated_struct(self):
        prog = ds("struct p { int x, y; }; "
                  "struct p v = { .y = 2, .x = 1 };")
        obj = [o for o in prog.objects if o.sym.name == "v"][0]
        init = obj.init
        assert isinstance(init, A.InitStruct)
        assert dict((n, i.expr.value) for n, i in init.members) == \
            {"x": 1, "y": 2}

    def test_brace_elision(self):
        prog = ds("int m[2][3] = { 1, 2, 3, 4, 5, 6 };")
        init = prog.objects[0].init
        assert isinstance(init, A.InitArray)
        assert len(init.elems) == 2
        row0 = init.elems[0][1]
        assert [e.expr.value for _, e in row0.elems] == [1, 2, 3]

    def test_array_designator(self):
        prog = ds("int a[5] = { [3] = 9 };")
        init = prog.objects[0].init
        assert init.elems[0][0] == 3

    def test_union_member_designator(self):
        prog = ds("union u { int i; char c; }; "
                  "union u v = { .c = 'x' };")
        obj = [o for o in prog.objects if o.sym.name == "v"][0]
        assert isinstance(obj.init, A.InitUnion)
        assert obj.init.member == "c"

    def test_excess_initialisers_rejected(self):
        with pytest.raises(DesugarError):
            ds("int a[2] = { 1, 2, 3 };")

    def test_string_literal_object_created(self):
        prog = ds('const char *s = "abc";')
        lits = [o for o in prog.objects
                if o.sym.name == "string_literal"]
        assert len(lits) == 1
        assert isinstance(lits[0].init, A.InitString)

    def test_string_literals_deduplicated(self):
        prog = ds('const char *a = "x"; const char *b = "x";')
        lits = [o for o in prog.objects
                if o.sym.name == "string_literal"]
        assert len(lits) == 1


class TestStaticAssert:
    def test_pass(self):
        ds("_Static_assert(sizeof(int) == 4, \"ok\");")

    def test_fail(self):
        with pytest.raises(DesugarError):
            ds('_Static_assert(0, "boom");')

    def test_sizeof_expr_in_const(self):
        prog = ds("int main(void) { int *p; "
                  "unsigned char b[sizeof(p)]; return sizeof(b); }")
        decl = main_of(prog).body.items[1]
        assert decl.qty.ty.size == 8
