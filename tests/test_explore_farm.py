"""Farm-sharded frontier exploration: a breadth-first seeding phase
hands pending subtrees to ``explore_shard`` pool tasks; merged results
must match a serial exploration path for path."""

from repro.dynamics.explore import ExplorationResult, Explorer, PathNode
from repro.dynamics.driver import Driver, Oracle
from repro.farm.frontier import explore_farm
from repro.farm.pool import SweepTask, execute_task
from repro.pipeline import compile_c, explore_c

# One unseq pair: a 576-path space, wide enough to shard yet quick
# to exhaust serially for exact-accounting comparisons.
PAIR = r'''
int a, b;
int main(void) { (a = 1) + (b = 2); return a + b - 3; }
'''


class TestFrontierHandoff:
    def test_seeder_stops_at_target_and_exposes_pending(self):
        program = compile_c(PAIR)

        def make_driver(oracle):
            return Driver(program.core, program.make_model("concrete"),
                          oracle, 500_000)

        ex = Explorer(make_driver, max_paths=10_000, strategy="bfs",
                      frontier_target=4)
        result = ex.run()
        assert result.exhausted            # handed off, not truncated
        assert len(ex.pending) >= 4
        assert all(isinstance(n, PathNode) for n in ex.pending)

    def test_subtrees_partition_the_space(self):
        # Seed-phase paths plus every pending subtree explored
        # serially must reproduce the full serial exploration exactly.
        program = compile_c(PAIR)

        def make_driver(oracle):
            return Driver(program.core, program.make_model("concrete"),
                          oracle, 500_000)

        serial = Explorer(make_driver, max_paths=100_000).run()
        seeder = Explorer(make_driver, max_paths=100_000,
                          strategy="bfs", frontier_target=4)
        seed_result = seeder.run()
        parts = [seed_result]
        for node in seeder.pending:
            parts.append(Explorer(make_driver, max_paths=100_000,
                                  initial=[node]).run())
        merged = ExplorationResult.merge(parts)
        assert merged.paths_run == serial.paths_run
        assert merged.exhausted
        assert merged.behaviour_keys() == serial.behaviour_keys()


class TestExploreShardTask:
    def test_shard_task_runs_subtree(self):
        task = SweepTask(index=0, name="shard", kind="explore_shard",
                         source=PAIR, models=("concrete",),
                         max_paths=100_000, max_steps=500_000,
                         prefix=(1,), sleep=())
        result = execute_task(task)
        assert result.ok, result.error
        shard = result.data["shard"]
        assert isinstance(shard, ExplorationResult)
        assert shard.exhausted
        assert shard.paths_run >= 1
        # Slimmed for IPC: deduplicated outcomes, traces stripped.
        assert all(o.trace == [] for o in shard.outcomes)

    def test_explore_task_strategy_and_por(self):
        task = SweepTask(index=0, name="t", kind="explore",
                         source=PAIR, models=("concrete",),
                         max_paths=100_000, max_steps=500_000,
                         strategy="bfs", por=True)
        result = execute_task(task)
        assert result.ok, result.error
        summary = result.data["explorations"]["concrete"]
        assert summary.exhausted
        assert summary.pruned > 0
        assert not summary.has_ub


class TestExploreFarm:
    def test_jobs1_matches_plain_exploration(self):
        serial = explore_c(PAIR, model="concrete",
                           max_paths=100_000)
        farm = explore_farm(PAIR, model="concrete",
                            max_paths=100_000, jobs=1)
        assert farm.paths_run == serial.paths_run
        assert farm.behaviour_keys() == serial.behaviour_keys()

    def test_sharded_merge_accounting(self):
        serial = explore_c(PAIR, model="concrete",
                           max_paths=100_000)
        farm = explore_farm(PAIR, model="concrete",
                            max_paths=100_000, jobs=2)
        # Seeding plus shards pop exactly the serial node set: the
        # merged accounting is equal, not merely similar.
        assert farm.paths_run == serial.paths_run
        assert farm.exhausted
        assert farm.behaviour_keys() == serial.behaviour_keys()

    def test_sharded_por_matches_serial_por(self):
        serial = explore_c(PAIR, model="concrete",
                           max_paths=100_000, por=True)
        farm = explore_farm(PAIR, model="concrete",
                            max_paths=100_000, jobs=2, por=True)
        assert farm.paths_run == serial.paths_run
        assert farm.pruned == serial.pruned
        assert farm.exhausted
        assert farm.behaviour_keys() == serial.behaviour_keys()

    def test_budget_hit_marks_not_exhausted(self):
        # The global budget is split across shards (ceiling), so the
        # merged total stays in the budget's ballpark — and a shard
        # hitting its slice marks the merge non-exhausted.
        farm = explore_farm(PAIR, model="concrete",
                            max_paths=40, jobs=2)
        assert not farm.exhausted
        assert 0 < farm.paths_run < 576    # well short of the space

    def test_entry_threaded_to_shards(self):
        # Shards must explore the same entry procedure the seeding
        # phase did, or prefixes replay against the wrong state space.
        src = ("int a, b; int go(void){ (a=1)+(b=2); return a+b-3; } "
               "int main(void){ return go(); }")
        from repro.dynamics.explore import explore_program
        program = compile_c(src)
        serial = explore_program(program.core,
                                 lambda: program.make_model("concrete"),
                                 entry="go", max_paths=100_000)
        farm = explore_farm(src, model="concrete", entry="go", jobs=2,
                            max_paths=100_000)
        assert farm.paths_run == serial.paths_run
        assert farm.diverged == 0
        assert farm.behaviour_keys() == serial.behaviour_keys()

    def test_merge_counters(self):
        a = ExplorationResult(paths_run=3, pruned=1, exhausted=True)
        b = ExplorationResult(paths_run=4, diverged=2, exhausted=False)
        merged = ExplorationResult.merge([a, b])
        assert merged.paths_run == 7
        assert merged.pruned == 1
        assert merged.diverged == 2
        assert not merged.exhausted
