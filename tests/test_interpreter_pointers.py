"""End-to-end interpreter tests: pointers, arrays, structs, unions,
lifetimes (ISO §6.5.3.2, §6.5.6, §6.7.2.1; paper §2, §5.7)."""

import pytest


class TestPointers:
    def test_address_and_deref(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 1;
    int *p = &x;
    *p = 2;
    printf("%d\n", x);
    return 0;
}''')
        assert out.stdout == "2\n"

    def test_pointer_to_pointer(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 1;
    int *p = &x;
    int **pp = &p;
    **pp = 7;
    printf("%d\n", x);
    return 0;
}''')
        assert out.stdout == "7\n"

    def test_swap_through_pointers(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
int main(void) {
    int x = 1, y = 2;
    swap(&x, &y);
    printf("%d %d\n", x, y);
    return 0;
}''')
        assert out.stdout == "2 1\n"

    def test_array_indexing_equivalences(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int a[4] = {10, 20, 30, 40};
    printf("%d %d %d %d\n", a[1], *(a + 2), 3[a], *(3 + a));
    return 0;
}''')
        assert out.stdout == "20 30 40 40\n"

    def test_pointer_arithmetic_walk(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int a[5] = {1, 2, 3, 4, 5};
    int sum = 0;
    for (int *p = a; p < a + 5; p++) sum += *p;
    printf("%d\n", sum);
    return 0;
}''')
        assert out.stdout == "15\n"

    def test_ptrdiff(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int a[10];
    printf("%d\n", (int)(&a[7] - &a[2]));
    return 0;
}''')
        assert out.stdout == "5\n"

    def test_function_pointers(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(int (*f)(int, int), int x, int y) { return f(x, y); }
int main(void) {
    int (*ops[2])(int, int) = { add, mul };
    printf("%d %d %d\n", apply(add, 2, 3), apply(mul, 2, 3),
           ops[1](4, 5));
    return 0;
}''')
        assert out.stdout == "5 6 20\n"

    def test_null_function_pointer_call(self, expect_ub):
        expect_ub(r'''
int main(void) {
    int (*f)(void) = 0;
    return f();
}''', "Indirection_invalid_function_pointer")

    def test_string_literal_access(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    const char *s = "hello";
    printf("%c%c %s\n", s[0], s[1], s + 2);
    return 0;
}''')
        assert out.stdout == "he llo\n"

    def test_string_literal_write_is_ub(self, expect_ub):
        expect_ub(r'''
int main(void) {
    char *s = (char *)"abc";
    s[0] = 'X';
    return 0;
}''', "Modifying_const_object")


class TestStructs:
    def test_nested_struct_access(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct inner { int a, b; };
struct outer { struct inner in; int c; };
int main(void) {
    struct outer o = { {1, 2}, 3 };
    o.in.b = 20;
    printf("%d %d %d\n", o.in.a, o.in.b, o.c);
    return 0;
}''')
        assert out.stdout == "1 20 3\n"

    def test_struct_assignment_copies(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct p { int x, y; };
int main(void) {
    struct p a = {1, 2};
    struct p b = a;
    b.x = 9;
    printf("%d %d %d %d\n", a.x, a.y, b.x, b.y);
    return 0;
}''')
        assert out.stdout == "1 2 9 2\n"

    def test_struct_by_value_param_and_return(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct p { int x, y; };
struct p flip(struct p v) { struct p r = { v.y, v.x }; return r; }
int main(void) {
    struct p a = {1, 2};
    struct p b = flip(a);
    printf("%d %d %d %d\n", a.x, a.y, b.x, b.y);
    return 0;
}''')
        assert out.stdout == "1 2 2 1\n"

    def test_array_of_structs(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct kv { int k; int v; };
int main(void) {
    struct kv table[3] = { {1, 10}, {2, 20}, {3, 30} };
    int sum = 0;
    for (int i = 0; i < 3; i++) sum += table[i].v;
    printf("%d\n", sum);
    return 0;
}''')
        assert out.stdout == "60\n"

    def test_arrow_chain(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct node { int v; struct node *next; };
int main(void) {
    struct node c = {3, 0}, b = {2, &c}, a = {1, &b};
    printf("%d\n", a.next->next->v);
    return 0;
}''')
        assert out.stdout == "3\n"

    def test_union_aliasing(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
union u { unsigned int i; unsigned short s[2]; };
int main(void) {
    union u v;
    v.i = 0x00020001u;
    printf("%u %u\n", v.s[0], v.s[1]);
    return 0;
}''')
        assert out.stdout == "1 2\n"

    def test_struct_with_array_member(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct buf { int len; char data[8]; };
int main(void) {
    struct buf b = { 2, "hi" };
    printf("%d %s\n", b.len, b.data);
    return 0;
}''')
        assert out.stdout == "2 hi\n"


class TestLifetimes:
    def test_block_scope_lifetime_end(self, expect_ub):
        expect_ub(r'''
int main(void) {
    int *p;
    { int x = 5; p = &x; }
    return *p;            /* x is dead (§6.2.4) */
}''', "Access_dead_object")

    def test_dangling_stack_pointer_from_call(self, expect_ub):
        expect_ub(r'''
int *leak(void) { int x = 5; return &x; }
int main(void) { return *leak(); }
''', "Access_dead_object")

    def test_loop_iteration_objects_fresh(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 0; i < 3; i++) { int x = i * 2; total += x; }
    printf("%d\n", total);
    return 0;
}''')
        assert out.stdout == "6\n"

    def test_use_after_free(self, expect_ub):
        expect_ub(r'''
#include <stdlib.h>
int main(void) {
    int *p = malloc(4);
    *p = 1;
    free(p);
    return *p;
}''', "Access_dead_object")

    def test_compound_literal_lifetime(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct p { int x, y; };
int main(void) {
    struct p *q = &(struct p){ 4, 5 };
    printf("%d %d\n", q->x, q->y);
    return 0;
}''')
        assert out.stdout == "4 5\n"


class TestHeap:
    def test_malloc_array(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    int *a = malloc(5 * sizeof(int));
    for (int i = 0; i < 5; i++) a[i] = i * i;
    int sum = 0;
    for (int i = 0; i < 5; i++) sum += a[i];
    free(a);
    printf("%d\n", sum);
    return 0;
}''')
        assert out.stdout == "30\n"

    def test_calloc_zeroed(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    int *a = calloc(4, sizeof(int));
    printf("%d %d\n", a[0], a[3]);
    free(a);
    return 0;
}''')
        assert out.stdout == "0 0\n"

    def test_realloc_preserves_prefix(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    int *a = malloc(2 * sizeof(int));
    a[0] = 11; a[1] = 22;
    a = realloc(a, 4 * sizeof(int));
    a[2] = 33;
    printf("%d %d %d\n", a[0], a[1], a[2]);
    free(a);
    return 0;
}''')
        assert out.stdout == "11 22 33\n"

    def test_free_null_ok(self, run_ok):
        run_ok(r'''
#include <stdlib.h>
int main(void) { free(0); return 0; }''')

    def test_heap_oob_write(self, expect_ub):
        expect_ub(r'''
#include <stdlib.h>
int main(void) {
    char *p = malloc(4);
    p[4] = 1;     /* one past the end: store is UB */
    return 0;
}''')

    def test_linked_list(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
struct node { int v; struct node *next; };
int main(void) {
    struct node *head = 0;
    for (int i = 1; i <= 5; i++) {
        struct node *n = malloc(sizeof(struct node));
        n->v = i; n->next = head; head = n;
    }
    int sum = 0;
    while (head) {
        struct node *d = head;
        sum += head->v;
        head = head->next;
        free(d);
    }
    printf("%d\n", sum);
    return 0;
}''')
        assert out.stdout == "15\n"


class TestGlobals:
    def test_zero_initialisation(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int g;
int arr[3];
int *p;
int main(void) {
    printf("%d %d %d\n", g, arr[2], p == 0);
    return 0;
}''')
        assert out.stdout == "0 0 1\n"

    def test_global_init_with_addresses(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int x = 5;
int *px = &x;
int main(void) { printf("%d\n", *px); return 0; }''')
        assert out.stdout == "5\n"

    def test_static_local_persists(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int counter(void) { static int n = 0; return ++n; }
int main(void) {
    counter(); counter();
    printf("%d\n", counter());
    return 0;
}''')
        assert out.stdout == "3\n"
