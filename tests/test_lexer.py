"""Unit tests for the lexer (ISO C11 §6.4)."""

import pytest

from repro.errors import LexError
from repro.lex import Token, TokenKind, lex_text


def toks(text):
    return [t for t in lex_text(text)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


def texts(text):
    return [t.text for t in toks(text)]


class TestBasicTokens:
    def test_identifiers(self):
        assert texts("foo _bar baz42 _0") == ["foo", "_bar", "baz42",
                                              "_0"]

    def test_keywords_are_identifiers_to_lexer(self):
        # Keyword classification happens in the parser (phase 7).
        ts = toks("int return while")
        assert all(t.kind is TokenKind.IDENT for t in ts)

    def test_punctuators_longest_match(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a--b") == ["a", "--", "b"]
        assert texts("x...y") == ["x", "...", "y"]

    def test_digraphs_canonicalised(self):
        assert texts("<% %> <: :>") == ["{", "}", "[", "]"]

    def test_ellipsis_vs_dots(self):
        assert texts("f(...)") == ["f", "(", "...", ")"]


class TestNumbers:
    def test_pp_numbers(self):
        assert texts("0 42 0x1F 017 1.5 1e10 0x1p3") == \
            ["0", "42", "0x1F", "017", "1.5", "1e10", "0x1p3"]

    def test_suffixes_stay_attached(self):
        assert texts("1u 2UL 3ll 4ULL") == ["1u", "2UL", "3ll", "4ULL"]

    def test_exponent_sign_included(self):
        assert texts("1e+5 1e-5") == ["1e+5", "1e-5"]

    def test_adjacent_number_then_op(self):
        assert texts("1+2") == ["1", "+", "2"]


class TestCharConstants:
    def test_simple(self):
        t = toks("'a'")[0]
        assert t.kind is TokenKind.CHAR_CONST
        assert t.value == ord("a")

    def test_escapes(self):
        cases = {r"'\n'": 10, r"'\t'": 9, r"'\0'": 0, r"'\x41'": 0x41,
                 r"'\''": 39, r"'\\'": 92, r"'\177'": 0o177}
        for text, value in cases.items():
            assert toks(text)[0].value == value, text

    def test_multichar_constant(self):
        # Implementation-defined; we follow GCC packing.
        assert toks("'ab'")[0].value == (ord("a") << 8) | ord("b")

    def test_empty_char_is_error(self):
        with pytest.raises(LexError):
            lex_text("''")

    def test_unterminated(self):
        with pytest.raises(LexError):
            lex_text("'a")


class TestStrings:
    def test_simple(self):
        t = toks('"hello"')[0]
        assert t.kind is TokenKind.STRING
        assert t.value == b"hello"

    def test_escapes(self):
        assert toks(r'"a\nb\0"')[0].value == b"a\nb\x00"

    def test_hex_escape(self):
        assert toks(r'"\x41\x42"')[0].value == b"AB"

    def test_unterminated(self):
        with pytest.raises(LexError):
            lex_text('"abc')


class TestCommentsAndSplices:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_block_comment_is_whitespace(self):
        ts = toks("a/*x*/b")
        assert ts[1].preceded_by_space

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            lex_text("/* never closed")

    def test_line_splice(self):
        assert texts("ab\\\ncd") == ["abcd"]

    def test_line_splice_in_string(self):
        assert toks('"ab\\\ncd"')[0].value == b"abcd"


class TestLocations:
    def test_line_and_column(self):
        ts = toks("a\n  b")
        assert (ts[0].loc.line, ts[0].loc.col) == (1, 1)
        assert (ts[1].loc.line, ts[1].loc.col) == (2, 3)

    def test_at_line_start_flag(self):
        ts = toks("a b\nc")
        assert ts[0].at_line_start
        assert not ts[1].at_line_start
        assert ts[2].at_line_start
