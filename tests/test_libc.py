"""The mini-libc implemented against the memory object model."""

import pytest


class TestPrintf:
    def test_conversions(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%d|%u|%x|%X|%o|%c|%s|%%\n",
           -5, 7u, 255, 255, 8, 'Z', "str");
    return 0;
}''')
        assert out.stdout == "-5|7|ff|FF|10|Z|str|%\n"

    def test_width_and_precision(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("[%5d][%-5d][%05d][%.2f]\n", 42, 42, 42, 3.14159);
    return 0;
}''')
        assert out.stdout == "[   42][42   ][00042][3.14]\n"

    def test_length_modifiers(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    long l = 123456789012345L;
    unsigned long ul = 18446744073709551615UL;
    printf("%ld %lu %zu\n", l, ul, sizeof(int));
    return 0;
}''')
        assert out.stdout == "123456789012345 18446744073709551615 4\n"

    def test_pointer_format(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int g;
int main(void) { printf("%p\n", (void*)&g); return 0; }''')
        assert out.stdout.startswith("0x")

    def test_return_value_is_length(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) { int n = printf("abc\n"); return n; }''')
        assert out.exit_code == 4

    def test_puts_putchar(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) { puts("line"); putchar('x'); putchar(10); return 0; }
''')
        assert out.stdout == "line\nx\n"

    def test_sprintf_and_snprintf(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char buf[32];
    sprintf(buf, "%d-%s", 7, "ok");
    puts(buf);
    char small[4];
    int n = snprintf(small, 4, "%d", 123456);
    printf("%s %d\n", small, n);
    return 0;
}''')
        assert out.stdout == "7-ok\n123 6\n"


class TestStringH:
    def test_strlen_strcmp(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    printf("%zu %d %d %d\n", strlen("hello"),
           strcmp("a", "b"), strcmp("b", "a"), strcmp("x", "x"));
    return 0;
}''')
        assert out.stdout == "5 -1 1 0\n"

    def test_strncmp(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    printf("%d %d\n", strncmp("abcX", "abcY", 3),
           strncmp("abcX", "abcY", 4) != 0);
    return 0;
}''')
        assert out.stdout == "0 1\n"

    def test_strcpy_strcat_strchr(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[32];
    strcpy(buf, "foo");
    strcat(buf, "bar");
    char *r = strchr(buf, 'b');
    printf("%s %s\n", buf, r);
    return 0;
}''')
        assert out.stdout == "foobar bar\n"

    def test_memset_memcmp(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    char a[8], b[8];
    memset(a, 7, 8);
    memset(b, 7, 8);
    printf("%d %d\n", memcmp(a, b, 8), a[3]);
    return 0;
}''')
        assert out.stdout == "0 7\n"

    def test_memcpy_overlapping_via_memmove(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[8] = "abcdef";
    memmove(buf + 2, buf, 4);
    printf("%s\n", buf);
    return 0;
}''')
        assert out.stdout == "ababcd\n"

    def test_memcpy_out_of_bounds(self, expect_ub):
        expect_ub(r'''
#include <string.h>
int main(void) {
    char small[2];
    memcpy(small, "too long for it", 10);
    return 0;
}''')


class TestStdlib:
    def test_abs_atoi(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    printf("%d %d %d %d\n", abs(-7), atoi("42"), atoi("-13"),
           atoi("99bottles"));
    return 0;
}''')
        assert out.stdout == "7 42 -13 99\n"

    def test_exit_stops_execution(self, run):
        out = run(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    printf("before\n");
    exit(3);
    printf("after\n");
    return 0;
}''')
        assert out.status == "exit"
        assert out.exit_code == 3
        assert out.stdout == "before\n"

    def test_abort(self, run):
        out = run(r'''
#include <stdlib.h>
int main(void) { abort(); return 0; }''')
        assert out.status == "abort"

    def test_rand_deterministic(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    srand(1);
    int a = rand();
    srand(1);
    int b = rand();
    printf("%d\n", a == b);
    return 0;
}''')
        assert out.stdout == "1\n"

    def test_assert_pass_and_fail(self, run):
        ok = run(r'''
#include <assert.h>
int main(void) { assert(1 == 1); return 0; }''')
        assert ok.status == "done"
        bad = run(r'''
#include <assert.h>
int main(void) { assert(1 == 2); return 0; }''')
        assert bad.status == "abort"
        assert "Assertion failed" in bad.stdout
