"""The mini-libc implemented against the memory object model."""

import pytest

from repro.dynamics.values import VInteger, VSpecified
from repro.libc.printf import format_string
from repro.memory.values import IntegerValue


def _vint(n):
    return VSpecified(VInteger(IntegerValue(n)))


def _fmt(fmt, *ints):
    text, consumed = format_string(fmt.encode("latin-1"),
                                   [_vint(n) for n in ints],
                                   lambda p: None)
    return text


class TestPrintf:
    def test_conversions(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%d|%u|%x|%X|%o|%c|%s|%%\n",
           -5, 7u, 255, 255, 8, 'Z', "str");
    return 0;
}''')
        assert out.stdout == "-5|7|ff|FF|10|Z|str|%\n"

    def test_width_and_precision(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("[%5d][%-5d][%05d][%.2f]\n", 42, 42, 42, 3.14159);
    return 0;
}''')
        assert out.stdout == "[   42][42   ][00042][3.14]\n"

    def test_length_modifiers(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    long l = 123456789012345L;
    unsigned long ul = 18446744073709551615UL;
    printf("%ld %lu %zu\n", l, ul, sizeof(int));
    return 0;
}''')
        assert out.stdout == "123456789012345 18446744073709551615 4\n"

    def test_pointer_format(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int g;
int main(void) { printf("%p\n", (void*)&g); return 0; }''')
        assert out.stdout.startswith("0x")

    def test_return_value_is_length(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) { int n = printf("abc\n"); return n; }''')
        assert out.exit_code == 4

    def test_puts_putchar(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) { puts("line"); putchar('x'); putchar(10); return 0; }
''')
        assert out.stdout == "line\nx\n"

    def test_sprintf_and_snprintf(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char buf[32];
    sprintf(buf, "%d-%s", 7, "ok");
    puts(buf);
    char small[4];
    int n = snprintf(small, 4, "%d", 123456);
    printf("%s %d\n", small, n);
    return 0;
}''')
        assert out.stdout == "7-ok\n123 6\n"


class TestPrintfConversionTable:
    """Golden table for the conversion machinery: width masking per
    length modifier (§7.21.6.1p7), * width/precision forms (p5),
    flag/width/precision combinations, argument-type UB (p9), and the
    <missing>/trailing-% edges."""

    def test_unsigned_masks_to_length_modifier_width(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%u\n", -1);
    printf("%hu\n", -1);
    printf("%hhu %hx %ho\n", -1, -1, -1);
    printf("%lu %lx\n", -1L, -1L);
    printf("%x %X %o\n", -1, -16, -8);
    return 0;
}''')
        assert out.stdout == ("4294967295\n"
                              "65535\n"
                              "255 ffff 177777\n"
                              "18446744073709551615 ffffffffffffffff\n"
                              "ffffffff FFFFFFF0 37777777770\n")

    def test_unsigned_mask_uses_implementation_int_width(self):
        # Under ILP32 `%lu` masks to 32 bits (long is 4 bytes there).
        from repro.ctypes.implementation import ILP32
        from repro.pipeline import run_c
        out = run_c(r'''
#include <stdio.h>
int main(void) { printf("%lu\n", -1L); return 0; }''', impl=ILP32)
        assert out.stdout == "4294967295\n"

    def test_star_width_and_precision(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("[%*d]\n", 5, 42);
    printf("[%*d]\n", -5, 42);
    printf("[%.*f]\n", 2, 3.14159);
    printf("[%*.*f]\n", 8, 2, 3.14159);
    printf("[%*s]\n", 6, "hi");
    return 0;
}''')
        assert out.stdout == ("[   42]\n[42   ]\n[3.14]\n"
                              "[    3.14]\n[    hi]\n")

    def test_flags_width_precision_combinations(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%+08.3f|%#06x|% d|%-6d|\n", 3.14159, 255, 42, 7);
    printf("[%10.3s][%-8s]\n", "hello", "hi");
    printf("%05u|%#o\n", -1, 8);
    return 0;
}''')
        assert out.stdout == ("+003.142|0x00ff| 42|7     |\n"
                              "[       hel][hi      ]\n"
                              "4294967295|010\n")

    def test_mismatched_conversion_is_ub(self, expect_ub):
        expect_ub(r'''
#include <stdio.h>
int main(void) { printf("%s\n", 5); return 0; }''',
                  "Printf_argument_type_mismatch")
        expect_ub(r'''
#include <stdio.h>
int main(void) { printf("%d\n", "str"); return 0; }''',
                  "Printf_argument_type_mismatch")
        expect_ub(r'''
#include <stdio.h>
int main(void) { printf("%*d\n", "w", 1); return 0; }''',
                  "Printf_argument_type_mismatch")

    def test_zero_precision_zero_prints_nothing(self, run_ok):
        # §7.21.6.1p8: zero with explicit zero precision -> no digits
        # (sign and octal-# prefixes survive; width pads with spaces).
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("[%.0d][%5.0d][%-3.0d][%+.0d][% .0d]\n", 0, 0, 0, 0, 0);
    printf("[%.0u][%#.0o][%#.0x][%05.0d][%.*d]\n", 0, 0, 0, 0, 0, 0);
    printf("[%.0d][%.2d]\n", 5, 7);
    return 0;
}''')
        assert out.stdout == ("[][     ][   ][+][ ]\n"
                              "[][0][][     ][]\n"
                              "[5][07]\n")

    def test_missing_and_trailing_edges(self):
        assert _fmt("%d %d", 1) == "1 <missing>"
        assert _fmt("[%*d]", 5) == "[<missing>]"
        assert _fmt("tail%") == "tail%"
        assert _fmt("%") == "%"
        assert _fmt("%5") == "%5"
        assert _fmt("100%% sure") == "100% sure"
        assert _fmt("%5%|%i", 3) == "%|3"

    def test_negative_char_c_conversion_table(self, run_ok):
        """%c converts the (promoted) argument to unsigned char
        (§7.21.6.1p8): a negative ``char`` prints as its
        representation byte, width padding included."""
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char c = -1;
    signed char s = -128;
    printf("[%c][%3c][%-3c]", c, c, c);
    printf("[%c][%c]\n", s, 321);
    return 0;
}''')
        assert out.stdout == "[\xff][  \xff][\xff  ][\x80][A]\n"

    def test_p_of_one_past_the_end_pointer(self):
        """%p of a one-past-the-end pointer is valid under every model
        — the %s pre-fetch must not read through non-%s pointer
        arguments (it used to walk past the array and trip the bounds
        check)."""
        from repro.pipeline import run_many
        src = r'''
#include <stdio.h>
int main(void) {
    char a[4];
    void *base = a;
    void *past = a + 4;
    printf("%p %p\n", base, past);
    return 0;
}'''
        for model, out in run_many(src).items():
            assert out.status in ("done", "exit"), \
                f"{model}: {out.summary()}"
            lo, hi = out.stdout.split()
            assert int(hi, 16) - int(lo, 16) == 4

    def test_precision_bounded_s_needs_no_terminator(self, run_ok):
        """§7.21.6.1p8: with an explicit precision, %s reads at most
        that many bytes — the array need not be null-terminated, and
        the pre-fetch must not walk past it looking for one."""
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char a[2];
    a[0] = 'h'; a[1] = 'i';
    printf("[%.2s][%.1s][%.0s]", a, a, a);
    printf("[%.*s]\n", 2, a);
    return 0;
}''', model="strict")
        assert out.stdout == "[hi][h][][hi]\n"

    def test_s_through_invalid_pointer_stays_ub(self, expect_ub):
        # The pre-fetch narrowing must not weaken %s checking.
        expect_ub(r'''
#include <stdio.h>
int main(void) { printf("%s\n", (char*)5); return 0; }''',
                  "Access_out_of_bounds")

    def test_star_width_argument_order_with_s_and_p(self, run_ok):
        # * width arguments shift the %s argument index; the pre-fetch
        # must account for them.
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char a[2];
    printf("[%*s]%d", 4, "hi", (int)sizeof(a));
    printf("[%.*s]\n", 1, "hi");
    return 0;
}''')
        assert out.stdout == "[  hi]2[h]\n"

    def test_format_string_length_table(self):
        # Direct golden table over the length-modifier widths (no
        # Implementation supplied -> LP64 defaults).
        table = [
            ("%hhu", -1, "255"),
            ("%hu", -1, "65535"),
            ("%u", -1, "4294967295"),
            ("%lu", -1, "18446744073709551615"),
            ("%llu", -1, "18446744073709551615"),
            ("%ju", -1, "18446744073709551615"),
            ("%zu", -1, "18446744073709551615"),
            ("%tu", -1, "18446744073709551615"),
            ("%hhx", -1, "ff"),
            ("%hX", -1, "FFFF"),
            ("%o", -1, "37777777777"),
            ("%lx", -1, "ffffffffffffffff"),
            ("%ld", -5, "-5"),          # signed: no masking
        ]
        for fmt, value, want in table:
            assert _fmt(fmt, value) == want, fmt


class TestStringH:
    def test_strlen_strcmp(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    printf("%zu %d %d %d\n", strlen("hello"),
           strcmp("a", "b"), strcmp("b", "a"), strcmp("x", "x"));
    return 0;
}''')
        assert out.stdout == "5 -1 1 0\n"

    def test_strncmp(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    printf("%d %d\n", strncmp("abcX", "abcY", 3),
           strncmp("abcX", "abcY", 4) != 0);
    return 0;
}''')
        assert out.stdout == "0 1\n"

    def test_strcpy_strcat_strchr(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[32];
    strcpy(buf, "foo");
    strcat(buf, "bar");
    char *r = strchr(buf, 'b');
    printf("%s %s\n", buf, r);
    return 0;
}''')
        assert out.stdout == "foobar bar\n"

    def test_memset_memcmp(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    char a[8], b[8];
    memset(a, 7, 8);
    memset(b, 7, 8);
    printf("%d %d\n", memcmp(a, b, 8), a[3]);
    return 0;
}''')
        assert out.stdout == "0 7\n"

    def test_memcpy_overlapping_via_memmove(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <string.h>
int main(void) {
    char buf[8] = "abcdef";
    memmove(buf + 2, buf, 4);
    printf("%s\n", buf);
    return 0;
}''')
        assert out.stdout == "ababcd\n"

    def test_memcpy_out_of_bounds(self, expect_ub):
        expect_ub(r'''
#include <string.h>
int main(void) {
    char small[2];
    memcpy(small, "too long for it", 10);
    return 0;
}''')


class TestStdlib:
    def test_abs_atoi(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    printf("%d %d %d %d\n", abs(-7), atoi("42"), atoi("-13"),
           atoi("99bottles"));
    return 0;
}''')
        assert out.stdout == "7 42 -13 99\n"

    def test_exit_stops_execution(self, run):
        out = run(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    printf("before\n");
    exit(3);
    printf("after\n");
    return 0;
}''')
        assert out.status == "exit"
        assert out.exit_code == 3
        assert out.stdout == "before\n"

    def test_abort(self, run):
        out = run(r'''
#include <stdlib.h>
int main(void) { abort(); return 0; }''')
        assert out.status == "abort"

    def test_rand_deterministic(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdlib.h>
int main(void) {
    srand(1);
    int a = rand();
    srand(1);
    int b = rand();
    printf("%d\n", a == b);
    return 0;
}''')
        assert out.stdout == "1\n"

    def test_assert_pass_and_fail(self, run):
        ok = run(r'''
#include <assert.h>
int main(void) { assert(1 == 1); return 0; }''')
        assert ok.status == "done"
        bad = run(r'''
#include <assert.h>
int main(void) { assert(1 == 2); return 0; }''')
        assert bad.status == "abort"
        assert "Assertion failed" in bad.stdout
