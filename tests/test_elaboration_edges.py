"""Elaboration edge cases: goto restrictions, switch shapes, nested
scopes, initialiser corner cases, conversions."""

import pytest

from repro.errors import UnsupportedError
from repro.pipeline import compile_c, run_c


class TestGotoRestrictions:
    def test_top_level_labels_fine(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int n = 0;
top:
    n++;
    if (n < 3) goto top;
    goto done;
    n = 100;
done:
    printf("%d\n", n);
    return 0;
}''')
        assert out.stdout == "3\n"

    def test_nested_label_rejected(self):
        with pytest.raises(UnsupportedError):
            compile_c(r'''
int main(void) {
    goto inner;
    { inner: return 1; }
    return 0;
}''')

    def test_goto_skips_initialiser_object_exists(self, run_ok):
        # §6.2.4: lifetime starts at block entry; the initialiser is
        # skipped but the object exists (uninitialised).
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    goto after;
    int x = 99;     /* skipped */
after:
    x = 5;          /* object exists: lifetime began at block entry */
    printf("%d\n", x);
    return 0;
}''')
        assert out.stdout == "5\n"

    def test_goto_into_loop_body_rejected(self):
        with pytest.raises(UnsupportedError):
            compile_c(r'''
int main(void) {
    goto inside;
    for (int i = 0; i < 3; i++) { inside: i++; }
    return 0;
}''')


class TestSwitchShapes:
    def test_empty_switch(self, run_ok):
        run_ok("int main(void) { switch (1) { } return 0; }")

    def test_switch_no_match_no_default(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    switch (9) { case 1: printf("one\n"); }
    printf("after\n");
    return 0;
}''')
        assert out.stdout == "after\n"

    def test_adjacent_case_labels(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int f(int x) {
    switch (x) { case 1: case 2: case 3: return 10; default: return 20; }
}
int main(void) { printf("%d %d\n", f(2), f(4)); return 0; }''')
        assert out.stdout == "10 20\n"

    def test_declaration_in_switch_body(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    switch (1) {
        case 1: { int local = 7; printf("%d\n", local); break; }
        default: break;
    }
    return 0;
}''')
        assert out.stdout == "7\n"

    def test_case_promotion(self, run_ok):
        # Controlling expression char promotes; case constants
        # converted to the promoted type (§6.8.4.2p5).
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char c = 'x';
    switch (c) { case 'x': printf("match\n"); break; default: ; }
    return 0;
}''')
        assert out.stdout == "match\n"


class TestScopes:
    def test_shadowing(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int x = 1;
int main(void) {
    int x = 2;
    { int x = 3; printf("%d", x); }
    printf("%d", x);
    { printf("%d", x); }
    printf("\n");
    return 0;
}''')
        assert out.stdout == "322\n"

    def test_sibling_blocks_reuse_names(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int total = 0;
    { int v = 1; total += v; }
    { int v = 10; total += v; }
    printf("%d\n", total);
    return 0;
}''')
        assert out.stdout == "11\n"

    def test_for_init_scope(self, run_ok):
        # The for-init declaration scopes over the loop only.
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int i = 100;
    for (int i = 0; i < 3; i++) ;
    printf("%d\n", i);
    return 0;
}''')
        assert out.stdout == "100\n"


class TestInitialiserEdges:
    def test_partial_array_zeroes_rest(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int a[5] = { 1, 2 };
    printf("%d %d %d\n", a[1], a[2], a[4]);
    return 0;
}''')
        assert out.stdout == "2 0 0\n"

    def test_designated_gap_zeroed(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int a[4] = { [2] = 9 };
    printf("%d %d %d %d\n", a[0], a[1], a[2], a[3]);
    return 0;
}''')
        assert out.stdout == "0 0 9 0\n"

    def test_string_shorter_than_array(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char s[8] = "ab";
    printf("%d %d %d\n", s[1], s[2], s[7]);
    return 0;
}''')
        assert out.stdout == "98 0 0\n"

    def test_nested_designators(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
struct in { int a, b; };
struct out { struct in x; int y; };
int main(void) {
    struct out v = { .x.b = 5, .y = 6 };
    printf("%d %d %d\n", v.x.a, v.x.b, v.y);
    return 0;
}''')
        assert out.stdout == "0 5 6\n"

    def test_init_expr_order_sequenced(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int n = 0;
int next(void) { return ++n; }
int main(void) {
    int a[3] = { next(), next(), next() };
    printf("%d %d %d\n", a[0], a[1], a[2]);
    return 0;
}''')
        assert out.stdout == "1 2 3\n"


class TestConversionEdges:
    def test_bool_conversion_clamps(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdbool.h>
int main(void) {
    bool a = 42, b = 0, c = -1;
    printf("%d %d %d\n", a, b, c);
    return 0;
}''')
        assert out.stdout == "1 0 1\n"

    def test_pointer_to_bool(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <stdbool.h>
int main(void) {
    int x;
    bool p = &x, q = (int *)0;
    printf("%d %d\n", p, q);
    return 0;
}''')
        assert out.stdout == "1 0\n"

    def test_double_to_int_truncates(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%d %d\n", (int)3.9, (int)-3.9);
    return 0;
}''')
        assert out.stdout == "3 -3\n"

    def test_narrowing_assignment(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    unsigned char c = 0x1234;   /* wraps modulo 256 */
    printf("%d\n", c);
    return 0;
}''')
        assert out.stdout == "52\n"

    def test_void_cast_discards(self, run_ok):
        run_ok("int main(void) { (void)42; (void)(1 + 2); return 0; }")
