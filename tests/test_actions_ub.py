"""Unit tests for action summaries / race detection primitives and the
UB catalogue."""

from repro import ub
from repro.dynamics.actions import (
    ActionRecord, ActionSummary, conflicting, find_unsequenced_race,
)
from repro.memory.base import Footprint


def rec(aid, addr, size, write, polarity="pos", regions=frozenset()):
    return ActionRecord(aid, "store" if write else "load",
                        Footprint(addr, size), write, polarity,
                        regions)


class TestConflicts:
    def test_overlap_write_read(self):
        assert conflicting(rec(1, 100, 4, True), rec(2, 102, 4, False))

    def test_no_overlap(self):
        assert not conflicting(rec(1, 100, 4, True),
                               rec(2, 104, 4, True))

    def test_read_read_never_conflicts(self):
        assert not conflicting(rec(1, 100, 4, False),
                               rec(2, 100, 4, False))

    def test_creates_never_conflict(self):
        create = ActionRecord(1, "create", None, False, "pos")
        assert not conflicting(create, rec(2, 100, 4, True))

    def test_footprint_overlap_boundaries(self):
        a = Footprint(100, 4)
        assert not a.overlaps(Footprint(104, 4))  # adjacent
        assert a.overlaps(Footprint(103, 1))
        assert a.overlaps(Footprint(96, 5))


class TestRaceSearch:
    def test_cross_group_race_found(self):
        race = find_unsequenced_race(
            [[rec(1, 100, 4, True)], [rec(2, 100, 4, True)]])
        assert race is not None

    def test_same_group_not_compared(self):
        race = find_unsequenced_race(
            [[rec(1, 100, 4, True), rec(2, 100, 4, True)], []])
        assert race is None

    def test_indet_region_exemption(self):
        # One action inside a call body: indeterminately sequenced.
        race = find_unsequenced_race(
            [[rec(1, 100, 4, True, regions=frozenset({9}))],
             [rec(2, 100, 4, True)]])
        assert race is None

    def test_same_region_chain_not_exempt(self):
        race = find_unsequenced_race(
            [[rec(1, 100, 4, True, regions=frozenset({9}))],
             [rec(2, 100, 4, True, regions=frozenset({9}))]])
        assert race is not None

    def test_different_regions_exempt(self):
        race = find_unsequenced_race(
            [[rec(1, 100, 4, True, regions=frozenset({1}))],
             [rec(2, 100, 4, True, regions=frozenset({2}))]])
        assert race is None


class TestSummaries:
    def test_union(self):
        a = ActionSummary.single(rec(1, 0, 4, True))
        b = ActionSummary.single(rec(2, 4, 4, False))
        assert len(a.union(b).records) == 2

    def test_negatives(self):
        s = ActionSummary([rec(1, 0, 4, True, "neg"),
                           rec(2, 4, 4, True, "pos")])
        assert [r.aid for r in s.negatives()] == [1]

    def test_tag_region(self):
        s = ActionSummary.single(rec(1, 0, 4, True))
        tagged = s.tag_region(5)
        assert tagged.records[0].regions == frozenset({5})
        # Original unchanged (records are immutable).
        assert s.records[0].regions == frozenset()


class TestUbCatalogue:
    def test_lookup(self):
        entry = ub.lookup("Negative_shift")
        assert entry.iso == "6.5.7p3"

    def test_catalogue_complete_for_fig3(self):
        for name in ("Exceptional_condition", "Negative_shift",
                     "Shift_too_large", "Division_by_zero"):
            assert name in ub.catalogue()

    def test_memory_ub_entries(self):
        for name in ("Access_out_of_bounds", "Access_dead_object",
                     "Access_wrong_provenance", "Free_invalid_pointer",
                     "Relational_distinct_objects",
                     "Ptrdiff_distinct_objects",
                     "Effective_type_mismatch", "Read_uninitialised",
                     "Unsequenced_race", "Data_race"):
            assert name in ub.catalogue(), name

    def test_every_entry_has_iso_clause(self):
        for entry in ub.catalogue().values():
            assert entry.iso
            assert entry.description

    def test_exception_carries_location(self):
        from repro.source import Loc
        exc = ub.UndefinedBehaviour(ub.DIVISION_BY_ZERO,
                                    Loc("f.c", 3, 1), "x/0")
        assert "f.c:3:1" in str(exc)
        assert "6.5.5p5" in str(exc)
