"""E2E harness for the farm daemon (repro.farm.server).

Every test here drives a *real* ``cerberus-py serve`` subprocess on a
temp unix socket (the ``farm_daemon`` conftest fixture): lifecycle,
concurrency, in-flight dedup, per-client quotas, malformed-input
rejection, and kill-9/restart recovery.  Golden-verdict parity with
the direct API lives in tests/test_server_conformance.py.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.farm.client import FarmClient, ServerError
from repro.farm.server import PROTOCOL_VERSION

OK = "int main(void){ return 7; }\n"
UNSEQ = "int x; int main(void){ return (x=1)+(x=2); }\n"
#: ~2.7s of exploration on this box: four unsequenced writes to
#: *distinct* objects — no UB, just a large interleaving space — so
#: the job is reliably still in flight when concurrent submissions,
#: drains, and kills land on it.
SLOW = ("int a; int b; int c; int d;\n"
        "int main(void){ (a=1)+(b=2)+(c=3)+(d=4);"
        " return a+b+c+d-10; }\n")
SLOW_PATHS = 4000


def raw_request(socket_path: str, line: bytes) -> dict:
    """Speak one raw line to the daemon — no client-side validation,
    so malformed bytes reach the server verbatim."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(30)
        s.connect(socket_path)
        s.sendall(line)
        data = b""
        while not data.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            data += chunk
    assert data, "server closed the connection without a response"
    return json.loads(data)


# -- lifecycle -----------------------------------------------------------------

def test_lifecycle_submit_status_result_stats(farm_daemon):
    daemon = farm_daemon()
    client = daemon.client(client="life")

    health = client.health()
    assert health["status"] == "serving"
    assert health["protocol"] == PROTOCOL_VERSION

    r = client.submit(OK, name="ok.c", models=["concrete"])
    assert r["state"] == "done"
    assert r["report"]["ok"]
    assert r["report"]["verdicts"]["concrete"]["exit_code"] == 7

    job = r["job"]
    assert client.status(job)["state"] == "done"
    result = client.result(job)
    assert result["report"] == r["report"]

    stats = client.stats()
    assert stats["protocol"] == PROTOCOL_VERSION
    server = stats["server"]
    assert server["workers"] == 1
    assert server["counters"]["accepted"] == 1
    assert server["counters"]["jobs_completed"] == 1
    assert server["jobs"]["done"] == 1
    assert "by_kind" in stats["store"]


def test_graceful_shutdown_removes_socket(farm_daemon):
    daemon = farm_daemon()
    client = daemon.client()
    client.submit(OK, name="ok.c", models=["concrete"])
    ack = client.shutdown()
    assert ack["draining"] is True
    assert daemon.proc.wait(timeout=30) == 0
    assert not os.path.exists(daemon.socket_path)
    assert "drained" in daemon.stderr()


def test_sigterm_drains_inflight_job(farm_daemon):
    daemon = farm_daemon()
    client = daemon.client()
    ack = client.submit(SLOW, name="slow.c", models=["concrete"],
                        mode="explore", max_paths=SLOW_PATHS,
                        wait=False)
    assert ack["state"] in ("queued", "running")
    time.sleep(0.3)   # let the worker pick it up
    assert daemon.terminate() == 0
    # The drain waited for the in-flight job and persisted its result:
    # a fresh incarnation on the same store serves it immediately.
    daemon2 = farm_daemon(store=daemon.store)
    result = daemon2.client().result(ack["job"])
    assert result["state"] == "done"
    exploration = result["report"]["explorations"]["concrete"]
    assert exploration["paths_run"] >= 1
    assert not exploration["has_ub"]


# -- concurrency and dedup -----------------------------------------------------

def test_concurrent_distinct_jobs_all_complete(farm_daemon):
    daemon = farm_daemon()
    sources = [f"int main(void){{ return {i}; }}\n" for i in range(6)]
    results = [None] * len(sources)

    def worker(i):
        client = daemon.client(client=f"c{i}")
        results[i] = client.submit(sources[i], name=f"p{i}.c",
                                   models=["concrete"])

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(len(sources))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    for i, r in enumerate(results):
        assert r is not None and r["state"] == "done"
        assert r["report"]["verdicts"]["concrete"]["exit_code"] == i
    counters = daemon.client().stats()["server"]["counters"]
    assert counters["accepted"] == len(sources)
    assert counters["jobs_executed"] == len(sources)


def test_ten_concurrent_clients_coalesce_to_one_computation(
        farm_daemon):
    """The ISSUE's dedup pin: 10 clients submitting the identical
    exploration — different client names and labels, which are
    non-semantic — produce exactly ONE compilation + exploration."""
    daemon = farm_daemon()
    seed_ack = daemon.client(client="seeder").submit(
        SLOW, name="slow.c", models=["concrete"], mode="explore",
        max_paths=SLOW_PATHS, wait=False)
    assert not seed_ack["coalesced"] and not seed_ack["cached"]

    reports = [None] * 10
    def worker(i):
        client = daemon.client(client=f"client-{i}",
                               wait_timeout=180)
        reports[i] = client.submit(
            SLOW, name="slow.c", models=["concrete"], mode="explore",
            max_paths=SLOW_PATHS, label=f"distinct-label-{i}")

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)

    assert all(r is not None for r in reports)
    payloads = [json.dumps(r["report"], sort_keys=True)
                for r in reports]
    assert len(set(payloads)) == 1, "coalesced waiters must all see " \
        "the one payload"
    assert all(r["job"] == seed_ack["job"] for r in reports)

    counters = daemon.client().stats()["server"]["counters"]
    assert counters["accepted"] == 1
    assert counters["jobs_executed"] == 1, \
        "ten identical submissions must run exactly one exploration"
    assert counters["dedup_coalesced"] + \
        counters["result_cache_hits"] == 10
    # The one executed job compiled the program exactly once.
    assert reports[0]["report"]["stats"]["translations"] == 1
    assert reports[0]["report"]["explorations"]["concrete"][
        "paths_run"] >= 1


def test_resubmission_is_served_from_result_record(farm_daemon):
    daemon = farm_daemon()
    client = daemon.client()
    first = client.submit(UNSEQ, name="u.c", models=["concrete"],
                          mode="explore", max_paths=32)
    again = client.submit(UNSEQ, name="u.c", models=["concrete"],
                          mode="explore", max_paths=32)
    assert again["cached"] and again["report"] == first["report"]
    # ...and across a restart: the payload is a store record.
    daemon.terminate()
    daemon2 = farm_daemon(store=daemon.store)
    revived = daemon2.client().submit(UNSEQ, name="u.c",
                                      models=["concrete"],
                                      mode="explore", max_paths=32)
    assert revived["cached"] and revived["report"] == first["report"]
    assert daemon2.client().stats()["server"]["counters"][
        "jobs_executed"] == 0


def test_semantic_identity_ignores_client_label_wait(farm_daemon):
    """Satellite 2: the job id is a hash of the *semantic* fields
    only — client identity, labels, and wait flags never fork the
    computation, so clients with different trace destinations (a
    client-side concern) coalesce."""
    daemon = farm_daemon()
    a = daemon.client(client="alice").submit(
        OK, name="ok.c", models=["concrete"], wait=False,
        label="alice-writes-/tmp/a-trace")
    b = daemon.client(client="bob").submit(
        OK, name="ok.c", models=["concrete"], wait=True,
        label="bob-writes-/tmp/b-trace")
    assert a["job"] == b["job"]
    # A semantic knob DOES fork the identity.
    c = daemon.client(client="alice").submit(
        OK, name="ok.c", models=["concrete"], max_steps=1_000_000,
        wait=False)
    assert c["job"] != a["job"]


# -- quotas --------------------------------------------------------------------

def test_quota_limits_unfinished_jobs_per_client(farm_daemon):
    daemon = farm_daemon(extra_args=("--quota", "1"))
    client = daemon.client(client="greedy")
    ack = client.submit(SLOW, name="slow.c", models=["concrete"],
                        mode="explore", max_paths=SLOW_PATHS,
                        wait=False)
    # A second distinct submission while the first is unfinished
    # trips the quota...
    with pytest.raises(ServerError) as exc:
        client.submit(OK, name="ok.c", models=["concrete"],
                      wait=False)
    assert exc.value.code == "quota-exceeded"
    # ...but re-submitting the in-flight job coalesces for free...
    dup = client.submit(SLOW, name="slow.c", models=["concrete"],
                        mode="explore", max_paths=SLOW_PATHS,
                        wait=False)
    assert dup["coalesced"] and dup["job"] == ack["job"]
    # ...and other clients have their own budget.
    other = daemon.client(client="patient").submit(
        OK, name="ok.c", models=["concrete"], wait=False)
    assert other["state"] in ("queued", "running")
    # Once the slow job finishes, the quota slot frees up.
    client.wait_result(ack["job"], timeout=120)
    after = client.submit(UNSEQ, name="u.c", models=["concrete"],
                          wait=False)
    assert after["state"] in ("queued", "running", "done")


# -- malformed and oversized input ---------------------------------------------

def test_malformed_requests_get_structured_errors(farm_daemon):
    daemon = farm_daemon(
        extra_args=("--max-request-bytes", "4096"))
    sp = daemon.socket_path

    def err(line: bytes) -> dict:
        payload = raw_request(sp, line)
        assert payload["ok"] is False
        assert "traceback" not in json.dumps(payload).lower()
        return payload["error"]

    assert err(b"{not json}\n")["code"] == "bad-json"
    assert err(b"[1, 2]\n")["code"] == "bad-request"
    assert err(b'{"v": 1}\n')["code"] == "bad-request"
    assert err(b'{"op": "frobnicate"}\n')["code"] == "unknown-op"
    e = err(b'{"op": "submit", "v": 99, "source": "int x;"}\n')
    assert e["code"] == "protocol-version"
    e = err(b'{"op": "submit"}\n')
    assert (e["code"], e["field"]) == ("missing-field", "source")
    # Unknown fields are rejected, not ignored: a typo'd semantic
    # knob must not silently change what the job means.
    e = err(b'{"op": "submit", "source": "int x;", '
            b'"max_pathz": 9}\n')
    assert (e["code"], e["field"]) == ("unknown-field", "max_pathz")
    e = err(b'{"op": "submit", "source": "int x;", '
            b'"max_steps": true}\n')
    assert (e["code"], e["field"]) == ("bad-field", "max_steps")
    e = err(b'{"op": "submit", "source": "int x;", '
            b'"models": ["bogus"]}\n')
    assert (e["code"], e["field"]) == ("bad-field", "models")
    e = err(b'{"op": "result", "job": "never-heard-of-it"}\n')
    assert e["code"] == "unknown-job"
    # An oversized request line: structured error, connection closed.
    big = json.dumps({"op": "submit",
                      "source": "x" * 8192}).encode() + b"\n"
    assert err(big)["code"] == "oversized"
    # The daemon survived all of it.
    assert daemon.client().health()["status"] == "serving"
    counters = daemon.client().stats()["server"]["counters"]
    assert counters["rejects"] >= 10
    assert counters["accepted"] == 0


def test_pending_result_is_a_structured_error(farm_daemon):
    daemon = farm_daemon()
    client = daemon.client()
    ack = client.submit(SLOW, name="slow.c", models=["concrete"],
                        mode="explore", max_paths=SLOW_PATHS,
                        wait=False)
    with pytest.raises(ServerError) as exc:
        client.result(ack["job"])
    assert exc.value.code == "pending"
    final = client.wait_result(ack["job"], timeout=120)
    assert final["state"] == "done"


# -- kill -9 / restart ---------------------------------------------------------

def test_kill9_restart_resumes_every_accepted_job(farm_daemon):
    """The crash-safety pin: SIGKILL the daemon (and its workers)
    with a running job and queued jobs, restart on the same store,
    and every accepted job still completes with the right answer."""
    daemon = farm_daemon()
    client = daemon.client(client="doomed")
    acks = [
        client.submit(SLOW, name="slow.c", models=["concrete"],
                      mode="explore", max_paths=SLOW_PATHS,
                      wait=False),
        client.submit(UNSEQ, name="u.c", models=["concrete"],
                      mode="explore", max_paths=32, wait=False),
        client.submit(OK, name="ok.c", models=["concrete"],
                      wait=False),
    ]
    assert len({a["job"] for a in acks}) == 3
    time.sleep(0.5)   # first job mid-exploration on the 1 worker
    daemon.kill9()

    daemon2 = farm_daemon(store=daemon.store,
                          socket_path=daemon.socket_path)
    # Every accepted-but-unfinished job was re-enqueued.
    stats = daemon2.client().stats()["server"]
    assert stats["counters"]["resumed"] == 3

    client2 = daemon2.client(client="survivor")
    results = {a["job"]: client2.wait_result(a["job"], timeout=180)
               for a in acks}
    assert all(r["state"] == "done" for r in results.values())
    slow = results[acks[0]["job"]]["report"]["explorations"][
        "concrete"]
    assert slow["paths_run"] >= 1 and not slow["has_ub"]
    unseq = results[acks[1]["job"]]["report"]["explorations"][
        "concrete"]
    assert any("Unsequenced_race" in b for b in unseq["behaviours"])
    ok = results[acks[2]["job"]]["report"]["verdicts"]["concrete"]
    assert ok["exit_code"] == 7


def test_client_polling_survives_a_daemon_restart(farm_daemon):
    """wait_result keeps polling through connection failures, so a
    client that submitted before a kill -9 just keeps waiting and
    gets its answer from the next incarnation."""
    daemon = farm_daemon()
    ack = daemon.client().submit(SLOW, name="slow.c",
                                 models=["concrete"], mode="explore",
                                 max_paths=SLOW_PATHS, wait=False)
    collected = {}

    def poller():
        collected["r"] = FarmClient(daemon.socket_path).wait_result(
            ack["job"], timeout=180)

    t = threading.Thread(target=poller)
    t.start()
    time.sleep(0.4)
    daemon.kill9()
    farm_daemon(store=daemon.store, socket_path=daemon.socket_path)
    t.join(timeout=180)
    assert collected["r"]["state"] == "done"


# -- the submit CLI ------------------------------------------------------------

def _submit_cli(daemon, *args):
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(__import__("repro").__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "submit", *args,
         "--socket", daemon.socket_path],
        env=env, capture_output=True, text=True, timeout=120)


def test_submit_cli_exit_codes(farm_daemon, tmp_path):
    daemon = farm_daemon()
    ok_c = tmp_path / "ok.c"
    ok_c.write_text(OK)
    ub_c = tmp_path / "ub.c"
    ub_c.write_text(UNSEQ)

    p = _submit_cli(daemon, str(ok_c), "--models", "concrete")
    assert p.returncode == 0 and "exit=7" in p.stdout

    p = _submit_cli(daemon, str(ub_c), "--models", "concrete",
                    "--exhaustive", "--max-paths", "32")
    assert p.returncode == 1 and "Unsequenced_race" in p.stdout

    p = _submit_cli(daemon, str(ok_c), "--models", "bogus")
    assert p.returncode == 2 and "unknown model" in p.stderr

    p = _submit_cli(daemon, str(tmp_path / "missing.c"))
    assert p.returncode == 2

    p = _submit_cli(daemon, str(ok_c), "--models", "concrete",
                    "--json")
    assert p.returncode == 0
    payload = json.loads(p.stdout)
    assert payload["report"]["verdicts"]["concrete"][
        "exit_code"] == 7

    daemon.terminate()
    p = _submit_cli(daemon, str(ok_c), "--models", "concrete")
    assert p.returncode == 2 and "cannot reach server" in p.stderr
