"""Tier-1 smoke check under ``python -O``.

``-O`` strips ``assert`` statements, so any diagnostic or control flow
that leans on them silently vanishes. The subprocess driver below uses
explicit checks only (no ``assert``) and exercises the layers that
historically used bare asserts: the printf argument-type diagnostics,
the batch pipeline, the incremental re-exploration seam (cold/warm
record round-trip, budget interruption, frontier resume), and one
full de facto test-suite sweep, whose verdicts must be identical to
an in-process run without ``-O``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

_SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

_DRIVER = r'''
import sys

if sys.flags.optimize < 1:
    sys.exit("driver must run under python -O")

from repro.pipeline import run_c, run_many
from repro.testsuite import run_suite_many

OK_SRC = """#include <stdio.h>
int main(void){ printf("%u %hu\\n", -1, -1); return 0; }"""
out = run_c(OK_SRC)
if out.status != "done" or out.stdout != "4294967295 65535\n":
    sys.exit(f"width masking broken under -O: {out.summary()}")

BAD_SRC = """#include <stdio.h>
int main(void){ printf("%s\\n", 5); return 0; }"""
bad = run_c(BAD_SRC)
if bad.status != "ub" or bad.ub is None or \
        bad.ub.name != "Printf_argument_type_mismatch":
    sys.exit("mismatched conversion must stay UB under -O, got "
             f"{bad.summary()}")

many = run_many(OK_SRC, models=["concrete", "strict"])
if any(o.stdout != "4294967295 65535\n" for o in many.values()):
    sys.exit("run_many diverged under -O")

# The widened fragment's UB paths must not lean on bare asserts: the
# VLA size checks live in explicit Core undef tests plus explicit
# driver checks, and bit-field semantics must be identical under -O.
VLA_NEG = "int main(void){ int n = -1; int a[n]; return 0; }"
neg = run_c(VLA_NEG)
if neg.status != "ub" or neg.ub is None or \
        neg.ub.name != "VLA_size_not_positive":
    sys.exit(f"negative VLA size must stay UB under -O, got "
             f"{neg.summary()}")

VLA_BIG = "int main(void){ long n = 1L << 40; int a[n]; return 0; }"
big = run_c(VLA_BIG)
if big.status != "ub" or big.ub is None or \
        big.ub.name != "VLA_size_too_large":
    sys.exit(f"overflowing VLA size must stay UB under -O, got "
             f"{big.summary()}")

BF_SRC = """#include <stdio.h>
struct s { unsigned a : 4; unsigned b : 4; };
int main(void){ struct s s; s.a = 15; s.b = 3;
    printf("%x\\n", ((unsigned char *)&s)[0]); return 0; }"""
bf = run_many(BF_SRC, models=["concrete", "strict"])
if any(o.stdout != "3f\n" for o in bf.values()):
    sys.exit("bit-field packing diverged under -O")

# Incremental re-exploration must not lean on asserts either: cold
# explore -> warm record hit (zero paths re-run) -> budget-interrupted
# partial -> resumed completion, all checked explicitly.
import shutil, tempfile
from repro.farm.explorestore import ExploreStore
from repro.pipeline import compile_c

UNSEQ = "int a, b; int main(void){ (a=1)+(b=2); return a+b-3; }"
root = tempfile.mkdtemp(prefix="smoke-explore-")
try:
    program = compile_c(UNSEQ)
    plain = program.explore("concrete", max_paths=100_000)
    es = ExploreStore(root)
    cold = program.explore("concrete", max_paths=100_000, store=es)
    if cold.paths_run != plain.paths_run or \
            cold.behaviour_keys() != plain.behaviour_keys():
        sys.exit("store-backed exploration diverged under -O")
    warm = program.explore("concrete", max_paths=100_000, store=es)
    if es.stats()["live_paths"] != plain.paths_run:
        sys.exit("warm exploration re-ran paths under -O")
    if warm.behaviour_keys() != plain.behaviour_keys():
        sys.exit("warm exploration record diverged under -O")
    es2 = ExploreStore(root + "-resume")
    part = program.explore("concrete", max_paths=40, store=es2)
    if part.paths_run != 40 or part.exhausted:
        sys.exit("budget interruption broke under -O")
    full = program.explore("concrete", max_paths=100_000, store=es2)
    if full.paths_run != plain.paths_run or not full.exhausted or \
            full.behaviour_keys() != plain.behaviour_keys():
        sys.exit("resumed exploration diverged under -O: "
                 f"{full.paths_run} vs {plain.paths_run}")
    if es2.stats()["resumes"] != 1 or \
            es2.stats()["live_paths"] != plain.paths_run:
        sys.exit("resume accounting broke under -O")
finally:
    shutil.rmtree(root, ignore_errors=True)
    shutil.rmtree(root + "-resume", ignore_errors=True)

# The static analysis must not lean on asserts: the definite-UB
# linter and the static POR pre-prune (annotations + collapsed
# choice points) are checked explicitly against the dynamic side.
from repro.pipeline import lint_c

RACE = "int main(void){ int x; int y = (x=1)+(x=2); return 0; }"
race_findings = lint_c(RACE)
if not any(f.definite and "Unsequenced_race" in f.names
           for f in race_findings):
    sys.exit("definite-UB linter lost the race finding under -O")
if lint_c(UNSEQ):
    sys.exit("linter flagged the commuting unseq program under -O")
sp = compile_c(UNSEQ).explore("concrete", max_paths=100_000,
                              static_prune=True)
if sp.paths_run != 1 or not sp.exhausted or \
        sp.behaviour_keys() != plain.behaviour_keys():
    sys.exit("static pre-pruning diverged under -O: "
             f"{sp.paths_run} paths")

report = run_suite_many(["concrete", "provenance"])
for r in report.results:
    print(f"{r.name}\t{r.model}\t{r.verdict!r}")
if report.failed():
    sys.exit(f"{len(report.failed())} suite expectations failed "
             "under -O")
'''


def test_suite_verdicts_survive_python_O():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-O", "-c", _DRIVER],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, \
        f"-O smoke failed:\n{proc.stdout}\n{proc.stderr}"

    from repro.testsuite import run_suite_many
    expected = {
        (r.name, r.model): repr(r.verdict)
        for r in run_suite_many(["concrete", "provenance"]).results
    }
    seen = {}
    for line in proc.stdout.splitlines():
        name, model, verdict = line.split("\t", 2)
        seen[(name, model)] = verdict
    assert seen == expected
