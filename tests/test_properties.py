"""Hypothesis property tests: the interpreter's arithmetic against an
independent Python model of the ISO semantics (§6.5, §6.3.1)."""

from hypothesis import given, settings, strategies as st

from repro.pipeline import run_c

_small_ints = st.integers(-1000, 1000)
_uints = st.integers(0, 2**32 - 1)
_ints = st.integers(-(2**31), 2**31 - 1)


def c_int_result(src):
    out = run_c(src, model="concrete")
    assert out.status == "done", (out.status, out.ub, out.error)
    return out.stdout


@settings(max_examples=25, deadline=None)
@given(_ints, _ints)
def test_signed_addition_matches(a, b):
    r = a + b
    src = (f'#include <stdio.h>\nint main(void) {{ int a = {a}; '
           f'int b = {b}; long s = (long)a + b; '
           f'printf("%ld\\n", s); return 0; }}')
    assert c_int_result(src) == f"{r}\n"


@settings(max_examples=25, deadline=None)
@given(_uints, _uints)
def test_unsigned_addition_is_modular(a, b):
    r = (a + b) % 2**32
    src = (f'#include <stdio.h>\nint main(void) {{ unsigned a = {a}u; '
           f'unsigned b = {b}u; printf("%u\\n", a + b); return 0; }}')
    assert c_int_result(src) == f"{r}\n"


@settings(max_examples=25, deadline=None)
@given(_uints, _uints)
def test_unsigned_multiplication_is_modular(a, b):
    r = (a * b) % 2**32
    src = (f'#include <stdio.h>\nint main(void) {{ unsigned a = {a}u; '
           f'unsigned b = {b}u; printf("%u\\n", a * b); return 0; }}')
    assert c_int_result(src) == f"{r}\n"


@settings(max_examples=25, deadline=None)
@given(_ints, st.integers(-(2**31), 2**31 - 1).filter(lambda x: x != 0))
def test_signed_division_truncates_toward_zero(a, b):
    if a == -(2**31) and b == -1:
        return  # UB, tested elsewhere
    q = abs(a) // abs(b)
    q = q if (a < 0) == (b < 0) else -q
    r = a - b * q
    src = ('#include <stdio.h>\nint main(void) { '
           f'int a = {a}; int b = {b}; '
           'printf("%d %d\\n", a / b, a % b); return 0; }')
    assert c_int_result(src) == f"{q} {r}\n"


@settings(max_examples=20, deadline=None)
@given(_uints, st.integers(0, 31))
def test_unsigned_shifts(a, s):
    left = (a << s) % 2**32
    right = a >> s
    src = (f'#include <stdio.h>\nint main(void) {{ unsigned a = {a}u; '
           f'printf("%u %u\\n", a << {s}, a >> {s}); return 0; }}')
    assert c_int_result(src) == f"{left} {right}\n"


@settings(max_examples=20, deadline=None)
@given(_ints, _ints)
def test_comparisons_match(a, b):
    vals = [int(a < b), int(a <= b), int(a == b), int(a != b),
            int(a > b), int(a >= b)]
    expected = " ".join(map(str, vals))
    src = (f'#include <stdio.h>\nint main(void) {{ int a = {a}; '
           f'int b = {b}; printf("%d %d %d %d %d %d\\n", '
           f'a < b, a <= b, a == b, a != b, a > b, a >= b); '
           f'return 0; }}')
    assert c_int_result(src) == expected + "\n"


@settings(max_examples=20, deadline=None)
@given(_ints)
def test_int_to_char_conversion_wraps(a):
    w = a & 0xFF
    expected = w - 256 if w >= 128 else w
    src = (f'#include <stdio.h>\nint main(void) {{ '
           f'signed char c = (signed char){a}; '
           f'printf("%d\\n", c); return 0; }}')
    assert c_int_result(src) == f"{expected}\n"


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
def test_array_sum_matches(values):
    n = len(values)
    init = ", ".join(map(str, values))
    src = (f'#include <stdio.h>\nint main(void) {{ '
           f'int a[{n}] = {{ {init} }}; int s = 0; '
           f'for (int i = 0; i < {n}; i++) s += a[i]; '
           f'printf("%d\\n", s); return 0; }}')
    assert c_int_result(src) == f"{sum(values)}\n"


@settings(max_examples=15, deadline=None)
@given(st.binary(min_size=0, max_size=12).filter(lambda b: 0 not in b))
def test_strlen_matches(data):
    escaped = "".join(f"\\x{b:02x}" for b in data)
    src = (f'#include <stdio.h>\n#include <string.h>\n'
           f'int main(void) {{ printf("%zu\\n", strlen("{escaped}")); '
           f'return 0; }}')
    assert c_int_result(src) == f"{len(data)}\n"


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=8),
       st.lists(st.integers(0, 255), min_size=1, max_size=8))
def test_memcmp_matches(a, b):
    n = min(len(a), len(b))
    expected = 0
    for x, y in zip(a[:n], b[:n]):
        if x != y:
            expected = 1 if x > y else -1
            break
    init_a = ", ".join(map(str, a))
    init_b = ", ".join(map(str, b))
    src = (f'#include <stdio.h>\n#include <string.h>\n'
           f'int main(void) {{ '
           f'unsigned char a[{len(a)}] = {{ {init_a} }}; '
           f'unsigned char b[{len(b)}] = {{ {init_b} }}; '
           f'int r = memcmp(a, b, {n}); '
           f'printf("%d\\n", (r > 0) - (r < 0)); return 0; }}')
    assert c_int_result(src) == f"{expected}\n"
