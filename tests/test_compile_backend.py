"""Differential backend conformance: ``compiled`` vs ``tree``.

The compiled back end (:mod:`repro.dynamics.compile`) and the
Core-walking tree evaluator must be *observably identical* — same
verdicts, same behaviour sets, same UB names and sites, same stdout,
same choice trees.  The tree backend is the oracle of record: any
disagreement is a compiled-backend bug by definition.

Three layers of evidence:

* single-path runs compare full :class:`Outcome` observables per
  program × model, including seeded nondeterministic oracles;
* bounded explorations compare behaviour sets cell by cell on a
  tier-1 subset of the de facto suite (and, in the ``slow_sweep``
  lane, the full suite × all models against the checked-in goldens);
* exploration records are keyed per backend — a frontier persisted by
  one backend is never resumed by the other (cross-backend resume
  re-keys to a fresh record instead of corrupting accounting).
"""

import pytest

from repro.farm.explorestore import ExploreStore
from repro.pipeline import MODELS, compile_for_model, run_many
from repro.testsuite.goldens import (
    GOLDEN_MAX_PATHS, GOLDEN_MAX_STEPS, behaviour_set,
    compute_verdicts,
)
from repro.testsuite.programs import TESTS

BACKENDS = ("compiled", "tree")

#: The tier-1 differential subset: one program per semantic corner —
#: arithmetic + calls, pointer provenance, effective types, uninit
#: reads, unsequenced races, concurrency, pointer/integer round-trips.
SUBSET = (
    "unsigned_wraparound",
    "provenance_basic_global_yx",
    "uninit_read",
    "unsequenced_race",
    "ptr_cast_roundtrip",
)


def _outcome_key(o):
    """Every observable of one run (trace excluded: it is
    diagnostic, not part of the verdict contract)."""
    return (o.status, o.exit_code, o.stdout,
            o.ub.name if o.ub else None, o.ub_detail,
            str(o.loc) if o.ub else "", o.error)


def _subset_names():
    # Fall back to the first few suite programs if a name ever
    # disappears — the subset must not silently shrink to nothing.
    names = [n for n in SUBSET if n in TESTS]
    return names if names else sorted(TESTS)[:4]


class TestSinglePathEquivalence:
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_run_many_identical_across_backends(self, model):
        for name in _subset_names():
            source = TESTS[name].source
            tree = run_many(source, models=[model], name=name,
                            backend="tree")[model]
            compiled = run_many(source, models=[model], name=name,
                                backend="compiled")[model]
            assert _outcome_key(compiled) == _outcome_key(tree), name

    def test_seeded_oracle_paths_agree(self):
        """A seeded random oracle resolves the same choice tree under
        both backends: path-for-path identical observables."""
        source = TESTS["unsequenced_race"].source
        program = compile_for_model(source, "concrete")
        for seed in range(6):
            tree = program.run("concrete", seed=seed, backend="tree")
            compiled = program.run("concrete", seed=seed,
                                   backend="compiled")
            assert _outcome_key(compiled) == _outcome_key(tree), seed

    def test_stdout_and_steps_observables(self):
        src = r'''
        #include <stdio.h>
        int fib(int n){ return n < 2 ? n : fib(n-1)+fib(n-2); }
        int main(void){
            int i;
            for (i = 0; i < 8; i++) printf("%d ", fib(i));
            printf("\n");
            return 0;
        }
        '''
        tree = run_many(src, models=["concrete"],
                        backend="tree")["concrete"]
        compiled = run_many(src, models=["concrete"],
                            backend="compiled")["concrete"]
        assert compiled.stdout == tree.stdout == "0 1 1 2 3 5 8 13 \n"
        assert _outcome_key(compiled) == _outcome_key(tree)


class TestExplorationEquivalence:
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_behaviour_sets_identical_on_subset(self, model):
        for name in _subset_names():
            cells = {backend: behaviour_set(TESTS[name].source, model,
                                            backend=backend)
                     for backend in BACKENDS}
            assert cells["compiled"] == cells["tree"], (name, model)

    def test_path_accounting_identical(self):
        """Not just the behaviour *set*: the enumeration itself —
        paths run, pruned, exhausted — matches, because the backends
        present identical choice points to the explorer."""
        source = TESTS["unsequenced_race"].source
        program = compile_for_model(source, "concrete")
        results = {b: program.explore("concrete", max_paths=10_000,
                                      backend=b)
                   for b in BACKENDS}
        tree, compiled = results["tree"], results["compiled"]
        assert compiled.paths_run == tree.paths_run
        assert compiled.pruned == tree.pruned
        assert compiled.exhausted == tree.exhausted
        assert compiled.behaviour_keys() == tree.behaviour_keys()


@pytest.mark.slow_sweep
class TestFullSuiteConformance:
    """The whole de facto suite × every model, both backends, against
    the checked-in goldens — the full 53 × 5 cross-product."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_cells_match_goldens(self, backend):
        from repro.testsuite.goldens import (
            diff_goldens, load_goldens,
        )
        doc = load_goldens()
        live = compute_verdicts(max_paths=doc["max_paths"],
                                max_steps=doc["max_steps"],
                                backend=backend)
        mismatches = diff_goldens(doc, live)
        assert not mismatches, "\n".join(mismatches)

    def test_backends_byte_identical_everywhere(self):
        compiled = compute_verdicts(max_paths=GOLDEN_MAX_PATHS,
                                    max_steps=GOLDEN_MAX_STEPS,
                                    backend="compiled")
        tree = compute_verdicts(max_paths=GOLDEN_MAX_PATHS,
                                max_steps=GOLDEN_MAX_STEPS,
                                backend="tree")
        assert compiled == tree


class TestCrossBackendRecords:
    """Exploration records are keyed per backend: resuming under the
    other backend re-keys to a fresh record instead of consuming (or
    clobbering) a frontier the other backend persisted."""

    SRC = "int a, b; int main(void){ (a=1)+(b=2); return 0; }"

    def test_keys_differ_per_backend(self, tmp_path):
        es = ExploreStore(tmp_path / "s")
        program = compile_for_model(self.SRC, "concrete")
        k_compiled = es.key(self.SRC, program.impl, "concrete",
                            backend="compiled")
        k_tree = es.key(self.SRC, program.impl, "concrete",
                        backend="tree")
        assert k_compiled != k_tree
        assert k_compiled == es.key(self.SRC, program.impl, "concrete")

    def test_cross_backend_resume_re_keys(self, tmp_path):
        es = ExploreStore(tmp_path / "s")
        program = compile_for_model(self.SRC, "concrete")
        cold = program.explore("concrete", max_paths=10_000, store=es,
                               backend="compiled")
        assert es.stats()["stores"] == 1
        # Same space under the other backend: the compiled record is
        # neither served nor resumed — a fresh live exploration under
        # its own key.
        other = program.explore("concrete", max_paths=10_000,
                                store=es, backend="tree")
        stats = es.stats()
        assert stats["hits"] == 0          # no cross-backend serve
        assert stats["resumes"] == 0       # no cross-backend resume
        assert stats["stores"] == 2        # re-keyed fresh record
        assert stats["live_paths"] == cold.paths_run + other.paths_run
        assert other.behaviour_keys() == cold.behaviour_keys()
        # Each backend now warm-hits its own record.
        for backend, reference in (("compiled", cold),
                                   ("tree", other)):
            before = es.stats()["live_paths"]
            warm = program.explore("concrete", max_paths=10_000,
                                   store=es, backend=backend)
            assert es.stats()["live_paths"] == before  # zero re-run
            assert warm.behaviour_keys() == \
                reference.behaviour_keys()


class TestCallProtocol:
    """Round 2's specialized call protocol (per-site callee cache,
    direct slot-write argument passing, pure-callee fast path, and
    pointer arguments on the fast path) against the tree oracle: the
    shapes the protocol special-cases must stay observably identical,
    and the ``compile.call_fast`` / ``compile.call_generic`` telemetry
    must attribute calls to the intended route."""

    def _both(self, src, model="concrete"):
        tree = run_many(src, models=[model], backend="tree")[model]
        compiled = run_many(src, models=[model],
                            backend="compiled")[model]
        assert _outcome_key(compiled) == _outcome_key(tree)
        return compiled

    def test_recursion_through_the_site_cache(self):
        # One call site alternating self-recursion: the inline cache
        # stays monomorphic and the frames must not leak into each
        # other (each depth gets a fresh slot frame).
        out = self._both(r'''
        int sum(int n) { return n <= 0 ? 0 : n + sum(n - 1); }
        int main(void) { return sum(40) == 820 ? 42 : 1; }
        ''')
        assert out.exit_code == 42

    def test_mutual_recursion(self):
        out = self._both(r'''
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) {
            return (is_even(20) && is_odd(13)) ? 42 : 1;
        }
        ''')
        assert out.exit_code == 42

    def test_pointer_arguments_fast_path(self):
        out = self._both(r'''
        void bump(unsigned *p, unsigned k) { *p = *p * k + 1u; }
        unsigned drain(unsigned *p) {
            unsigned v = *p; *p = 0u; return v;
        }
        int main(void) {
            unsigned s = 1u;
            bump(&s, 3u);
            bump(&s, 5u);
            return drain(&s) == 21u && s == 0u ? 42 : 1;
        }
        ''')
        assert out.exit_code == 42

    def test_struct_arguments_and_return(self):
        out = self._both(r'''
        struct pair { int a; int b; };
        struct pair swap(struct pair p) {
            struct pair q; q.a = p.b; q.b = p.a; return q;
        }
        int add(struct pair p) { return p.a + p.b; }
        int main(void) {
            struct pair p; p.a = 40; p.b = 2;
            struct pair q = swap(p);
            return (q.a == 2 && q.b == 40 && add(q) == 42)
                ? add(p) : 1;
        }
        ''')
        assert out.exit_code == 42

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_ub_inside_callee_same_verdict(self, model):
        # The callee traps (null deref): verdict, UB name, and site
        # must match the oracle — the fast path may not swallow or
        # relocate the diagnostic.
        src = r'''
        int deref(int *p) { return *p; }
        int main(void) { return deref((int *)0); }
        '''
        tree = run_many(src, models=[model], backend="tree")[model]
        compiled = run_many(src, models=[model],
                            backend="compiled")[model]
        assert _outcome_key(compiled) == _outcome_key(tree)
        assert compiled.status == "ub"

    def test_call_route_counters(self):
        from repro import obs
        src = r'''
        #include <stdio.h>
        int twice(int n) { return 2 * n; }
        int main(void) { printf("%d\n", twice(21)); return 0; }
        '''
        program = compile_for_model(src, "concrete")
        with obs.collecting() as reg:
            out = program.run("concrete", backend="compiled")
        assert out.status == "done" and out.stdout == "42\n"
        counters = reg.counters
        # twice() rides the specialized protocol; printf is native
        # and stays on the generic route.
        assert counters.get("compile.call_fast", 0) >= 1
        assert counters.get("compile.call_generic", 0) >= 1
        # The tree evaluator has no such counters at all.
        with obs.collecting() as reg2:
            program.run("concrete", backend="tree")
        assert "compile.call_fast" not in reg2.counters
        assert "compile.call_generic" not in reg2.counters
