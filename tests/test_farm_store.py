"""The persistent artifact store: durability, bounds, versioning.

Covers the store's contract end to end: cache hits across *separate
processes* (a subprocess round-trip), silent recompilation on
corrupted or truncated artifacts, LRU eviction under the size bound,
and invalidation on a ``schema_version`` bump — for compiled
artifacts *and* for the exploration records
(:mod:`repro.farm.explorestore`) that share the store.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ctypes.implementation import ILP32, LP64
from repro.farm.explorestore import ExplorationRecord, ExploreStore
from repro.farm.store import ArtifactStore, STORE_SCHEMA_VERSION
from repro.pipeline import (
    clear_compile_cache, compile_c, compile_cache_stats,
    set_artifact_store,
)

SRC = "int main(void){ return 40 + 2; }"
UNSEQ = "int a, b; int main(void){ (a=1)+(b=2); return 0; }"


@pytest.fixture(autouse=True)
def warm_closures(monkeypatch):
    """A fresh process-local warm-closure cache per test: entries are
    keyed on content (not on the store directory), so a warm hit from
    a previous test's identical source would otherwise short-circuit
    this test's store and skew its counters."""
    from repro.farm.store import WarmCache
    cache = WarmCache()
    monkeypatch.setattr("repro.farm.store.WARM_CLOSURES", cache)
    return cache


@pytest.fixture
def store(tmp_path):
    s = ArtifactStore(tmp_path / "store")
    previous = set_artifact_store(s)
    clear_compile_cache()
    yield s
    set_artifact_store(previous)
    clear_compile_cache()


def _entry_paths(s: ArtifactStore):
    return sorted(p for p in s.objects.glob("*/*.pkl")
                  if not p.name.startswith(".tmp-"))


class TestStoreBasics:
    def test_put_on_translate_get_on_fresh_cache(self, store):
        program = compile_c(SRC)
        assert store.stats()["stores"] == 1
        assert compile_cache_stats()["translations"] == 1
        clear_compile_cache()            # simulate a fresh process
        again = compile_c(SRC)
        assert compile_cache_stats()["translations"] == 0
        assert store.stats()["hits"] == 1
        assert again.run("concrete").exit_code == 42
        assert again is not program      # deserialised, not shared

    def test_key_discriminates_impl_and_flags(self, store):
        k = store.key(SRC, LP64)
        assert k != store.key(SRC, ILP32)
        assert k != store.key(SRC, LP64, check_core=False)
        assert k != store.key(SRC + " ", LP64)
        assert k == store.key(SRC, LP64)

    def test_store_survives_direct_get_put(self, tmp_path):
        s = ArtifactStore(tmp_path / "s")
        assert s.get(SRC, LP64) is None
        program = compile_c(SRC, use_cache=False)
        s.put(SRC, LP64, "<string>", True, program)
        loaded = s.get(SRC, LP64)
        assert loaded.run("provenance").exit_code == 42


class TestCrossProcess:
    def test_cache_hit_across_two_processes(self, tmp_path):
        """The defining property: a second *process* skips the front
        end entirely on a warm store."""
        store_dir = tmp_path / "xproc"
        child = (
            "import json, sys\n"
            "from repro.farm.store import ArtifactStore\n"
            "from repro.pipeline import compile_c, "
            "compile_cache_stats, set_artifact_store\n"
            f"store = ArtifactStore({str(store_dir)!r})\n"
            "set_artifact_store(store)\n"
            f"program = compile_c({SRC!r})\n"
            "out = program.run('concrete')\n"
            "print(json.dumps({'exit': out.exit_code,\n"
            "    'translations': "
            "compile_cache_stats()['translations'],\n"
            "    'store': store.stats()}))\n"
        )
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src_root + os.pathsep \
            + env.get("PYTHONPATH", "")

        def run_child():
            proc = subprocess.run([sys.executable, "-c", child],
                                  capture_output=True, text=True,
                                  env=env, check=True)
            import json
            return json.loads(proc.stdout)

        first = run_child()
        assert first["exit"] == 42
        assert first["translations"] == 1
        assert first["store"]["stores"] == 1

        second = run_child()
        assert second["exit"] == 42
        assert second["translations"] == 0      # front end skipped
        assert second["store"]["hits"] == 1


class TestCorruption:
    def test_truncated_artifact_recompiles_silently(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(path.read_bytes()[:20])  # truncate
        clear_compile_cache()
        program = compile_c(SRC)                  # must not raise
        assert program.run("concrete").exit_code == 42
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert compile_cache_stats()["translations"] == 1

    def test_garbage_artifact_recompiles_silently(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(b"\x00not a pickle at all")
        clear_compile_cache()
        assert compile_c(SRC).run("concrete").exit_code == 42
        assert store.stats()["corrupt"] == 1

    def test_foreign_pickle_rejected(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(pickle.dumps(("wrong-magic", 1, "k", None)))
        clear_compile_cache()
        assert compile_c(SRC).run("concrete").exit_code == 42
        assert store.stats()["corrupt"] == 1

    def test_corrupt_entry_is_dropped_then_replaced(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(b"junk")
        clear_compile_cache()
        compile_c(SRC)                   # drops junk, re-puts
        [fresh] = _entry_paths(store)
        payload = pickle.loads(fresh.read_bytes())
        assert payload[0] == "cerberus-farm-artifact"


class TestEviction:
    def _put(self, s, i):
        src = f"int main(void){{ return {i}; }}"
        program = compile_c(src, use_cache=False)
        s.put(src, LP64, "<string>", True, program)
        return src

    def test_eviction_respects_size_bound(self, tmp_path):
        s0 = ArtifactStore(tmp_path / "probe")
        self._put(s0, 0)
        entry_size = s0.size_bytes()
        assert entry_size > 0
        # Room for ~2 entries: the third put must evict the LRU one.
        s = ArtifactStore(tmp_path / "bounded",
                          max_bytes=int(entry_size * 2.5))
        srcs = [self._put(s, i) for i in range(3)]
        stats = s.stats()
        assert stats["evictions"] >= 1
        assert s.size_bytes() <= s.max_bytes
        assert s.get(srcs[0], LP64) is None      # oldest evicted
        assert s.get(srcs[2], LP64) is not None  # newest kept

    def test_lru_get_refreshes_recency(self, tmp_path):
        s0 = ArtifactStore(tmp_path / "probe")
        self._put(s0, 0)
        entry_size = s0.size_bytes()
        s = ArtifactStore(tmp_path / "lru",
                          max_bytes=int(entry_size * 2.5))
        a = self._put(s, 10)
        os.utime(_entry_paths(s)[0], (1, 1))     # age entry a
        b = self._put(s, 11)
        s.get(a, LP64)                           # touch a: now MRU? no-
        # a was aged to epoch, then touched -> newest; b untouched.
        c = self._put(s, 12)                     # evicts b, not a
        assert s.get(a, LP64) is not None
        assert s.get(b, LP64) is None

    def test_newest_entry_always_survives(self, tmp_path):
        s = ArtifactStore(tmp_path / "tiny", max_bytes=1)
        src = self._put(s, 7)
        assert s.get(src, LP64) is not None      # kept despite bound


class TestHitRecency:
    """LRU recency must refresh on cache *hit*, not only on put — a hot
    artifact served from the in-memory cache since the process started
    must not be evicted from disk while cold entries survive."""

    def test_in_memory_hit_touches_store_entry(self, store):
        compile_c(SRC)                           # translate + put
        [path] = _entry_paths(store)
        os.utime(path, (1, 1))                   # age to the epoch
        program = compile_c(SRC)                 # in-memory hit
        assert program is not None
        assert compile_cache_stats()["hits"] == 1
        assert path.stat().st_mtime > 1          # recency refreshed

    def test_hot_entry_survives_eviction_despite_in_memory_hits(
            self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        previous = set_artifact_store(probe)
        try:
            clear_compile_cache()
            hot = "int main(void){ return 1; }"
            compile_c(hot)
            entry_size = probe.size_bytes()
            s = ArtifactStore(tmp_path / "hot",
                              max_bytes=int(entry_size * 2.5))
            set_artifact_store(s)
            clear_compile_cache()
            compile_c(hot)                       # translate + put
            cold = "int main(void){ return 2; }"
            compile_c(cold)                      # put (newer than hot)
            for _ in range(3):
                compile_c(hot)                   # in-memory hits: touch
            filler = "int main(void){ return 3; }"
            compile_c(filler)                    # put -> evicts one
            assert s.stats()["evictions"] >= 1
            clear_compile_cache()
            # Without touch-on-hit, `hot` would be the oldest entry on
            # disk and be evicted while the colder `cold` survives.
            assert s.get(hot, LP64) is not None
        finally:
            set_artifact_store(previous)
            clear_compile_cache()

    def test_recency_stamps_are_strictly_ordered(self, tmp_path):
        """A put and a hit inside one filesystem-timestamp tick must
        not tie (a tie lets the name tiebreak evict the touched
        entry)."""
        s = ArtifactStore(tmp_path / "ticks")
        a = "int main(void){ return 10; }"
        b = "int main(void){ return 11; }"
        s.put(a, LP64, "<string>", True,
              compile_c(a, use_cache=False))
        s.put(b, LP64, "<string>", True,
              compile_c(b, use_cache=False))
        s.get(a, LP64)                           # immediately after
        mtimes = {p.name: p.stat().st_mtime for p in _entry_paths(s)}
        assert len(set(mtimes.values())) == 2    # no tie
        key_a = s.key(a, LP64)
        key_b = s.key(b, LP64)
        assert mtimes[f"{key_a}.pkl"] > mtimes[f"{key_b}.pkl"]


class TestExplorationRecords:
    """Exploration records ride the same store: corruption falls back
    to a silent re-explore, their bytes count against the LRU bound,
    and a schema bump invalidates them together with the artifacts."""

    def _explore(self, tmp_path, subdir="s", max_paths=100_000):
        es = ExploreStore(ArtifactStore(tmp_path / subdir))
        program = compile_c(UNSEQ, use_cache=False)
        result = program.explore("concrete", max_paths=max_paths,
                                 store=es)
        return es, program, result

    def test_record_round_trip(self, tmp_path):
        es, program, cold = self._explore(tmp_path)
        warm = program.explore("concrete", max_paths=100_000, store=es)
        assert warm.paths_run == cold.paths_run
        assert warm.behaviour_keys() == cold.behaviour_keys()
        stats = es.stats()
        assert stats == {**stats, "hits": 1, "misses": 1, "stores": 1,
                         "live_paths": cold.paths_run}

    def test_corrupt_record_re_explores_silently(self, tmp_path):
        es, program, cold = self._explore(tmp_path)
        # The store also holds the backend's "lowered" record now;
        # corrupt specifically the exploration record.
        key = es.key(UNSEQ, program.impl, "concrete")
        [path] = [p for p in _entry_paths(es.store)
                  if p.name == f"{key}.pkl"]
        path.write_bytes(b"\x00garbage, not a record")
        redo = program.explore("concrete", max_paths=100_000, store=es)
        assert redo.paths_run == cold.paths_run        # re-explored
        assert redo.behaviour_keys() == cold.behaviour_keys()
        stats = es.stats()
        assert stats["corrupt"] == 1
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert stats["live_paths"] == 2 * cold.paths_run
        # ... and the damaged entry was replaced by a good one.
        assert es.stats()["stores"] == 2

    def test_truncated_record_is_a_miss(self, tmp_path):
        es, program, _ = self._explore(tmp_path)
        key = es.key(UNSEQ, program.impl, "concrete")
        [path] = [p for p in _entry_paths(es.store)
                  if p.name == f"{key}.pkl"]
        path.write_bytes(path.read_bytes()[:10])
        assert es.get(key) is None
        assert es.stats()["corrupt"] == 1

    def test_foreign_object_under_record_key_is_a_miss(self, tmp_path):
        es, program, _ = self._explore(tmp_path)
        key = es.key(UNSEQ, program.impl, "concrete")
        es.store.put_record(key, {"not": "a record"})
        before = es.stats()
        assert es.get(key) is None
        after = es.stats()
        # Counted as a miss (never a hit) so explore_hit_rate stays
        # truthful, and dropped like any corrupt entry.
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"] + 1
        assert after["corrupt"] == before["corrupt"] + 1
        assert es.store.get_record(key) is None    # entry dropped

    def test_record_key_discriminates_the_space(self, tmp_path):
        es = ExploreStore(tmp_path / "k")
        base = dict(name="<string>", entry="main", max_steps=500_000,
                    strategy="dfs", seed=None, por=False)
        k = es.key(UNSEQ, LP64, "concrete", **base)
        assert k != es.key(UNSEQ, LP64, "provenance", **base)
        assert k != es.key(UNSEQ, ILP32, "concrete", **base)
        assert k != es.key(UNSEQ + " ", LP64, "concrete", **base)
        for twist in (dict(strategy="bfs"), dict(seed=3),
                      dict(por=True), dict(entry="go"),
                      dict(max_steps=1000), dict(name="other.c")):
            assert k != es.key(UNSEQ, LP64, "concrete",
                               **{**base, **twist}), twist
        assert k == es.key(UNSEQ, LP64, "concrete", **base)

    def test_eviction_counts_exploration_bytes(self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        es_probe = ExploreStore(probe)
        program = compile_c(UNSEQ, use_cache=False)
        # Size the lowered record (put once per store) and one
        # exploration record separately, so the bound below leaves
        # room for the lowering plus ~2 exploration records.
        program.lowered(probe)
        lowered_size = probe.size_bytes()
        program.explore("concrete", max_paths=100_000, store=es_probe)
        record_size = probe.size_bytes() - lowered_size
        assert record_size > 0
        # Room for ~2 records: the third put must evict the oldest
        # exploration record (the lowered record is touched by every
        # explore, so it stays recent).
        store = ArtifactStore(tmp_path / "bounded",
                              max_bytes=lowered_size
                              + int(record_size * 2.5))
        es = ExploreStore(store)
        keys = []
        for i, model in enumerate(["concrete", "provenance", "gcc"]):
            program.explore(model, max_paths=100_000, store=es)
            keys.append(es.key(UNSEQ, program.impl, model))
        assert store.stats()["evictions"] >= 1
        assert store.size_bytes() <= store.max_bytes
        assert es.get(keys[0]) is None         # oldest record evicted
        assert es.get(keys[2]) is not None     # newest kept

    def test_records_and_artifacts_share_the_bound(self, tmp_path):
        """A flood of exploration records must evict old compiled
        artifacts too — one budget, not two."""
        probe = ArtifactStore(tmp_path / "probe")
        probe.put(SRC, LP64, "<string>", True,
                  compile_c(SRC, use_cache=False))
        artifact_size = probe.size_bytes()
        program = compile_c(UNSEQ, use_cache=False)
        program.lowered(probe)
        lowered_size = probe.size_bytes() - artifact_size
        program.explore("concrete", max_paths=100_000,
                        store=ExploreStore(probe))
        record_size = probe.size_bytes() - artifact_size \
            - lowered_size
        assert record_size > 0
        # Room for the artifact, the lowering, plus ~2 exploration
        # records: the record flood below must push the (older)
        # artifact out.
        store = ArtifactStore(
            tmp_path / "shared",
            max_bytes=artifact_size + lowered_size
            + int(record_size * 2.5))
        store.put(SRC, LP64, "<string>", True,
                  compile_c(SRC, use_cache=False))
        assert store.get(SRC, LP64) is not None
        es = ExploreStore(store)
        for model in ("concrete", "provenance", "gcc", "strict"):
            program.explore(model, max_paths=100_000, store=es)
        assert store.size_bytes() <= store.max_bytes
        assert store.get(SRC, LP64) is None    # artifact paid the bill

    def test_schema_bump_invalidates_records_and_artifacts(
            self, tmp_path):
        """One version bump (e.g. 2 -> 3) must orphan *both* record
        families at once: stale Core layouts and stale exploration
        state are equally unsafe to deserialise."""
        root = tmp_path / "versioned"
        old = ArtifactStore(root, schema_version=STORE_SCHEMA_VERSION)
        old.put(SRC, LP64, "<string>", True,
                compile_c(SRC, use_cache=False))
        es_old = ExploreStore(old)
        program = compile_c(UNSEQ, use_cache=False)
        cold = program.explore("concrete", max_paths=100_000,
                               store=es_old)
        assert old.get(SRC, LP64) is not None
        assert es_old.stats()["stores"] == 1

        new = ArtifactStore(root,
                            schema_version=STORE_SCHEMA_VERSION + 1)
        es_new = ExploreStore(new)
        assert new.get(SRC, LP64) is None      # artifact invalidated
        redo = program.explore("concrete", max_paths=100_000,
                               store=es_new)
        assert es_new.stats()["hits"] == 0     # record invalidated
        assert es_new.stats()["live_paths"] == cold.paths_run
        assert redo.behaviour_keys() == cold.behaviour_keys()
        # The old-schema store still serves its own entries.
        assert old.get(SRC, LP64) is not None
        assert es_old.get(es_old.key(UNSEQ, program.impl,
                                     "concrete")) is not None


class TestLoweredRecords:
    """Back-end lowering records (the ``"lowered"`` kind,
    :meth:`repro.pipeline.CompiledProgram.lowered`) ride the same
    store: a corrupt record falls back to a silent re-lower, lowered
    bytes count against the shared LRU budget, and a schema bump
    invalidates them with everything else."""

    def _lowered_key(self, store, program, name="<string>"):
        from repro.dynamics.compile import LOWERED_VERSION
        from repro.pipeline import LOWERED_RECORD_KIND
        return store.record_key(LOWERED_RECORD_KIND, program.source,
                                repr(program.impl), name,
                                str(LOWERED_VERSION))

    def test_record_round_trip_validates(self, tmp_path,
                                         warm_closures):
        store = ArtifactStore(tmp_path / "s")
        compile_c(SRC, use_cache=False).lowered(store)
        per = store.stats()["by_kind"]["lowered"]
        assert per["stores"] == 1 and per["misses"] == 1
        # A fresh artifact (fresh Core term, e.g. a new process —
        # modelled by dropping the process-local warm closures)
        # validates against the persisted layout instead of
        # re-putting.
        warm_closures.clear()
        compile_c(SRC, use_cache=False).lowered(store)
        per = store.stats()["by_kind"]["lowered"]
        assert per["hits"] == 1
        assert per["stores"] == 1

    def test_corrupt_record_re_lowers_silently(self, tmp_path,
                                               warm_closures):
        store = ArtifactStore(tmp_path / "s")
        program = compile_c(SRC, use_cache=False)
        program.lowered(store)
        [path] = _entry_paths(store)
        path.write_bytes(b"\x00garbage, not a lowering")
        warm_closures.clear()        # force the on-disk record path
        fresh = compile_c(SRC, use_cache=False)
        assert fresh.lowered(store) is not None    # must not raise
        per = store.stats()["by_kind"]["lowered"]
        assert per["corrupt"] == 1
        assert per["stores"] == 2        # damaged entry replaced
        # ... and the replacement validates for the next consumer.
        warm_closures.clear()
        compile_c(SRC, use_cache=False).lowered(store)
        assert store.stats()["by_kind"]["lowered"]["hits"] == 1

    def test_eviction_counts_lowered_bytes(self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        sources = [f"int main(void){{ return {i}; }}"
                   for i in range(3)]
        programs = [compile_c(s, use_cache=False) for s in sources]
        programs[0].lowered(probe)
        entry_size = probe.size_bytes()
        assert entry_size > 0
        # Room for ~2 lowered records: the third put must evict the
        # oldest one.
        store = ArtifactStore(tmp_path / "bounded",
                              max_bytes=int(entry_size * 2.5))
        for program in programs:
            program.lowered(store)
        assert store.stats()["evictions"] >= 1
        assert store.size_bytes() <= store.max_bytes
        assert store.get_record(
            self._lowered_key(store, programs[0])) is None
        assert store.get_record(
            self._lowered_key(store, programs[2])) is not None

    def test_schema_bump_invalidates_lowered_records(self, tmp_path,
                                                     warm_closures):
        root = tmp_path / "versioned"
        old = ArtifactStore(root, schema_version=STORE_SCHEMA_VERSION)
        compile_c(SRC, use_cache=False).lowered(old)
        assert old.stats()["by_kind"]["lowered"]["stores"] == 1
        new = ArtifactStore(root,
                            schema_version=STORE_SCHEMA_VERSION + 1)
        compile_c(SRC, use_cache=False).lowered(new)
        per = new.stats()["by_kind"]["lowered"]
        assert per["hits"] == 0 and per["stores"] == 1  # re-lowered
        # The old-schema handle still validates its own record.
        warm_closures.clear()
        old2 = ArtifactStore(root,
                             schema_version=STORE_SCHEMA_VERSION)
        compile_c(SRC, use_cache=False).lowered(old2)
        assert old2.stats()["by_kind"]["lowered"]["hits"] == 1


class TestSchemaVersion:
    def test_schema_bump_invalidates_old_entries(self, tmp_path):
        root = tmp_path / "versioned"
        v1 = ArtifactStore(root, schema_version=STORE_SCHEMA_VERSION)
        program = compile_c(SRC, use_cache=False)
        v1.put(SRC, LP64, "<string>", True, program)
        assert v1.get(SRC, LP64) is not None

        v2 = ArtifactStore(root,
                           schema_version=STORE_SCHEMA_VERSION + 1)
        assert v2.get(SRC, LP64) is None         # key no longer matches
        assert v2.stats()["misses"] == 1
        # and the old store still serves its own entries
        assert v1.get(SRC, LP64) is not None

    def test_schema_bump_recompiles_through_pipeline(self, tmp_path):
        root = tmp_path / "versioned2"
        previous = set_artifact_store(ArtifactStore(root))
        try:
            clear_compile_cache()
            compile_c(SRC)
            assert compile_cache_stats()["translations"] == 1
            set_artifact_store(
                ArtifactStore(root,
                              schema_version=STORE_SCHEMA_VERSION + 1))
            clear_compile_cache()
            compile_c(SRC)
            assert compile_cache_stats()["translations"] == 1
        finally:
            set_artifact_store(previous)
            clear_compile_cache()


class TestWarmClosureCache:
    """The process-local warm-closure cache
    (:data:`repro.farm.store.WARM_CLOSURES`): the in-memory layer of
    the two-level lowering persistence.  Entries are keyed on the same
    content address as the ``"lowered"`` store records, one entry
    soundly serves every memory model, a schema bump invalidates warm
    entries exactly as it invalidates persisted ones, and only the
    compiled back end ever touches it."""

    @pytest.fixture
    def warm(self, warm_closures):
        return warm_closures

    def test_repeat_lowering_adopts_one_entry(self, tmp_path, warm):
        store = ArtifactStore(tmp_path / "s")
        first = compile_c(SRC, use_cache=False).lowered(store)
        assert warm.stats()["entries"] == 1
        # A fresh CompiledProgram (fresh Core term) adopts the warm
        # closures by identity instead of re-lowering.
        assert compile_c(SRC, use_cache=False).lowered(store) is first
        assert warm.stats()["hits"] == 1
        assert warm.stats()["entries"] == 1

    def test_key_discriminates_source_and_impl(self, tmp_path, warm):
        store = ArtifactStore(tmp_path / "s")
        compile_c(SRC, use_cache=False).lowered(store)
        compile_c("int main(void){ return 7; }",
                  use_cache=False).lowered(store)
        compile_c(SRC, impl=ILP32, use_cache=False).lowered(store)
        stats = warm.stats()
        assert stats["entries"] == 3
        assert stats["hits"] == 0

    def test_one_entry_serves_every_model(self, tmp_path, warm):
        store = ArtifactStore(tmp_path / "s")
        seeded = compile_c(SRC, use_cache=False).lowered(store)
        for model in ("concrete", "provenance"):
            fresh = compile_c(SRC, use_cache=False)
            assert fresh.lowered(store) is seeded
            out = fresh.run(model, backend="compiled")
            assert out.status == "done" and out.exit_code == 42
        assert warm.stats() == {"hits": 2, "misses": 1, "entries": 1}

    def test_schema_bump_invalidates_warm_entries(self, tmp_path,
                                                  warm):
        root = tmp_path / "s"
        old = ArtifactStore(root, schema_version=STORE_SCHEMA_VERSION)
        compile_c(SRC, use_cache=False).lowered(old)
        new = ArtifactStore(root,
                            schema_version=STORE_SCHEMA_VERSION + 1)
        compile_c(SRC, use_cache=False).lowered(new)
        # Distinct keys: the bumped schema never sees the old entry.
        assert warm.stats()["entries"] == 2
        assert warm.stats()["hits"] == 0

    def test_warm_hit_shields_corrupt_record(self, tmp_path, warm):
        store = ArtifactStore(tmp_path / "s")
        compile_c(SRC, use_cache=False).lowered(store)
        [path] = _entry_paths(store)
        path.write_bytes(b"\x00garbage, not a lowering")
        # While the warm entry lives, the damaged on-disk record is
        # never even read.
        assert compile_c(SRC, use_cache=False).lowered(store) \
            is not None
        assert warm.stats()["hits"] == 1
        assert store.stats()["by_kind"]["lowered"]["corrupt"] == 0
        # Once it is gone, the corrupt record falls back to a silent
        # re-lower that re-warms the cache.
        warm.clear()
        assert compile_c(SRC, use_cache=False).lowered(store) \
            is not None
        assert store.stats()["by_kind"]["lowered"]["corrupt"] == 1
        assert warm.stats()["entries"] == 1

    def test_stale_glob_names_reject_adoption(self, tmp_path, warm):
        # File-scope objects get process-unique Core names (a_17 in
        # one compile, a_53 in the next), and the lowered closures
        # bake those names into their global_env lookups.  A fresh
        # compile of the same source must therefore NOT adopt the
        # warm entry — doing so crashed with "unbound Core symbol"
        # the moment main touched a global.
        src = ("int a, b; int main(void)"
               "{ (a = 1) + (b = 2); return a + b - 3; }")
        store = ArtifactStore(tmp_path / "s")
        first = compile_c(src, use_cache=False)
        seeded = first.lowered(store)
        assert first.run("concrete",
                         backend="compiled").exit_code == 0
        fresh = compile_c(src, use_cache=False)
        relowered = fresh.lowered(store)
        assert relowered is not seeded
        out = fresh.run("concrete", backend="compiled")
        assert out.status == "done" and out.exit_code == 0
        # The stale entry reads as a miss (and is evicted, so the
        # fresh lowering takes over its slot).
        assert warm.stats() == {"hits": 0, "misses": 2, "entries": 1}

    def test_tree_backend_never_touches_warm_cache(self, tmp_path,
                                                   warm):
        store = ArtifactStore(tmp_path / "s")
        program = compile_c(SRC, use_cache=False)
        result = program.explore("concrete", max_paths=10,
                                 store=store, backend="tree")
        assert result.paths_run >= 1
        assert warm.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_lru_bound_by_count(self):
        from repro.farm.store import WARM_CLOSURES, WarmCache
        assert WARM_CLOSURES.max_entries == 64
        cache = WarmCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes recency
        cache.put("c", 3)                   # evicts "b", not "a"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["entries"] == 2
