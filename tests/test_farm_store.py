"""The persistent artifact store: durability, bounds, versioning.

Covers the store's contract end to end: cache hits across *separate
processes* (a subprocess round-trip), silent recompilation on
corrupted or truncated artifacts, LRU eviction under the size bound,
and invalidation on a ``schema_version`` bump.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ctypes.implementation import ILP32, LP64
from repro.farm.store import ArtifactStore, STORE_SCHEMA_VERSION
from repro.pipeline import (
    clear_compile_cache, compile_c, compile_cache_stats,
    set_artifact_store,
)

SRC = "int main(void){ return 40 + 2; }"


@pytest.fixture
def store(tmp_path):
    s = ArtifactStore(tmp_path / "store")
    previous = set_artifact_store(s)
    clear_compile_cache()
    yield s
    set_artifact_store(previous)
    clear_compile_cache()


def _entry_paths(s: ArtifactStore):
    return sorted(p for p in s.objects.glob("*/*.pkl")
                  if not p.name.startswith(".tmp-"))


class TestStoreBasics:
    def test_put_on_translate_get_on_fresh_cache(self, store):
        program = compile_c(SRC)
        assert store.stats()["stores"] == 1
        assert compile_cache_stats()["translations"] == 1
        clear_compile_cache()            # simulate a fresh process
        again = compile_c(SRC)
        assert compile_cache_stats()["translations"] == 0
        assert store.stats()["hits"] == 1
        assert again.run("concrete").exit_code == 42
        assert again is not program      # deserialised, not shared

    def test_key_discriminates_impl_and_flags(self, store):
        k = store.key(SRC, LP64)
        assert k != store.key(SRC, ILP32)
        assert k != store.key(SRC, LP64, check_core=False)
        assert k != store.key(SRC + " ", LP64)
        assert k == store.key(SRC, LP64)

    def test_store_survives_direct_get_put(self, tmp_path):
        s = ArtifactStore(tmp_path / "s")
        assert s.get(SRC, LP64) is None
        program = compile_c(SRC, use_cache=False)
        s.put(SRC, LP64, "<string>", True, program)
        loaded = s.get(SRC, LP64)
        assert loaded.run("provenance").exit_code == 42


class TestCrossProcess:
    def test_cache_hit_across_two_processes(self, tmp_path):
        """The defining property: a second *process* skips the front
        end entirely on a warm store."""
        store_dir = tmp_path / "xproc"
        child = (
            "import json, sys\n"
            "from repro.farm.store import ArtifactStore\n"
            "from repro.pipeline import compile_c, "
            "compile_cache_stats, set_artifact_store\n"
            f"store = ArtifactStore({str(store_dir)!r})\n"
            "set_artifact_store(store)\n"
            f"program = compile_c({SRC!r})\n"
            "out = program.run('concrete')\n"
            "print(json.dumps({'exit': out.exit_code,\n"
            "    'translations': "
            "compile_cache_stats()['translations'],\n"
            "    'store': store.stats()}))\n"
        )
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src_root + os.pathsep \
            + env.get("PYTHONPATH", "")

        def run_child():
            proc = subprocess.run([sys.executable, "-c", child],
                                  capture_output=True, text=True,
                                  env=env, check=True)
            import json
            return json.loads(proc.stdout)

        first = run_child()
        assert first["exit"] == 42
        assert first["translations"] == 1
        assert first["store"]["stores"] == 1

        second = run_child()
        assert second["exit"] == 42
        assert second["translations"] == 0      # front end skipped
        assert second["store"]["hits"] == 1


class TestCorruption:
    def test_truncated_artifact_recompiles_silently(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(path.read_bytes()[:20])  # truncate
        clear_compile_cache()
        program = compile_c(SRC)                  # must not raise
        assert program.run("concrete").exit_code == 42
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert compile_cache_stats()["translations"] == 1

    def test_garbage_artifact_recompiles_silently(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(b"\x00not a pickle at all")
        clear_compile_cache()
        assert compile_c(SRC).run("concrete").exit_code == 42
        assert store.stats()["corrupt"] == 1

    def test_foreign_pickle_rejected(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(pickle.dumps(("wrong-magic", 1, "k", None)))
        clear_compile_cache()
        assert compile_c(SRC).run("concrete").exit_code == 42
        assert store.stats()["corrupt"] == 1

    def test_corrupt_entry_is_dropped_then_replaced(self, store):
        compile_c(SRC)
        [path] = _entry_paths(store)
        path.write_bytes(b"junk")
        clear_compile_cache()
        compile_c(SRC)                   # drops junk, re-puts
        [fresh] = _entry_paths(store)
        payload = pickle.loads(fresh.read_bytes())
        assert payload[0] == "cerberus-farm-artifact"


class TestEviction:
    def _put(self, s, i):
        src = f"int main(void){{ return {i}; }}"
        program = compile_c(src, use_cache=False)
        s.put(src, LP64, "<string>", True, program)
        return src

    def test_eviction_respects_size_bound(self, tmp_path):
        s0 = ArtifactStore(tmp_path / "probe")
        self._put(s0, 0)
        entry_size = s0.size_bytes()
        assert entry_size > 0
        # Room for ~2 entries: the third put must evict the LRU one.
        s = ArtifactStore(tmp_path / "bounded",
                          max_bytes=int(entry_size * 2.5))
        srcs = [self._put(s, i) for i in range(3)]
        stats = s.stats()
        assert stats["evictions"] >= 1
        assert s.size_bytes() <= s.max_bytes
        assert s.get(srcs[0], LP64) is None      # oldest evicted
        assert s.get(srcs[2], LP64) is not None  # newest kept

    def test_lru_get_refreshes_recency(self, tmp_path):
        s0 = ArtifactStore(tmp_path / "probe")
        self._put(s0, 0)
        entry_size = s0.size_bytes()
        s = ArtifactStore(tmp_path / "lru",
                          max_bytes=int(entry_size * 2.5))
        a = self._put(s, 10)
        os.utime(_entry_paths(s)[0], (1, 1))     # age entry a
        b = self._put(s, 11)
        s.get(a, LP64)                           # touch a: now MRU? no-
        # a was aged to epoch, then touched -> newest; b untouched.
        c = self._put(s, 12)                     # evicts b, not a
        assert s.get(a, LP64) is not None
        assert s.get(b, LP64) is None

    def test_newest_entry_always_survives(self, tmp_path):
        s = ArtifactStore(tmp_path / "tiny", max_bytes=1)
        src = self._put(s, 7)
        assert s.get(src, LP64) is not None      # kept despite bound


class TestHitRecency:
    """LRU recency must refresh on cache *hit*, not only on put — a hot
    artifact served from the in-memory cache since the process started
    must not be evicted from disk while cold entries survive."""

    def test_in_memory_hit_touches_store_entry(self, store):
        compile_c(SRC)                           # translate + put
        [path] = _entry_paths(store)
        os.utime(path, (1, 1))                   # age to the epoch
        program = compile_c(SRC)                 # in-memory hit
        assert program is not None
        assert compile_cache_stats()["hits"] == 1
        assert path.stat().st_mtime > 1          # recency refreshed

    def test_hot_entry_survives_eviction_despite_in_memory_hits(
            self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        previous = set_artifact_store(probe)
        try:
            clear_compile_cache()
            hot = "int main(void){ return 1; }"
            compile_c(hot)
            entry_size = probe.size_bytes()
            s = ArtifactStore(tmp_path / "hot",
                              max_bytes=int(entry_size * 2.5))
            set_artifact_store(s)
            clear_compile_cache()
            compile_c(hot)                       # translate + put
            cold = "int main(void){ return 2; }"
            compile_c(cold)                      # put (newer than hot)
            for _ in range(3):
                compile_c(hot)                   # in-memory hits: touch
            filler = "int main(void){ return 3; }"
            compile_c(filler)                    # put -> evicts one
            assert s.stats()["evictions"] >= 1
            clear_compile_cache()
            # Without touch-on-hit, `hot` would be the oldest entry on
            # disk and be evicted while the colder `cold` survives.
            assert s.get(hot, LP64) is not None
        finally:
            set_artifact_store(previous)
            clear_compile_cache()

    def test_recency_stamps_are_strictly_ordered(self, tmp_path):
        """A put and a hit inside one filesystem-timestamp tick must
        not tie (a tie lets the name tiebreak evict the touched
        entry)."""
        s = ArtifactStore(tmp_path / "ticks")
        a = "int main(void){ return 10; }"
        b = "int main(void){ return 11; }"
        s.put(a, LP64, "<string>", True,
              compile_c(a, use_cache=False))
        s.put(b, LP64, "<string>", True,
              compile_c(b, use_cache=False))
        s.get(a, LP64)                           # immediately after
        mtimes = {p.name: p.stat().st_mtime for p in _entry_paths(s)}
        assert len(set(mtimes.values())) == 2    # no tie
        key_a = s.key(a, LP64)
        key_b = s.key(b, LP64)
        assert mtimes[f"{key_a}.pkl"] > mtimes[f"{key_b}.pkl"]


class TestSchemaVersion:
    def test_schema_bump_invalidates_old_entries(self, tmp_path):
        root = tmp_path / "versioned"
        v1 = ArtifactStore(root, schema_version=STORE_SCHEMA_VERSION)
        program = compile_c(SRC, use_cache=False)
        v1.put(SRC, LP64, "<string>", True, program)
        assert v1.get(SRC, LP64) is not None

        v2 = ArtifactStore(root,
                           schema_version=STORE_SCHEMA_VERSION + 1)
        assert v2.get(SRC, LP64) is None         # key no longer matches
        assert v2.stats()["misses"] == 1
        # and the old store still serves its own entries
        assert v1.get(SRC, LP64) is not None

    def test_schema_bump_recompiles_through_pipeline(self, tmp_path):
        root = tmp_path / "versioned2"
        previous = set_artifact_store(ArtifactStore(root))
        try:
            clear_compile_cache()
            compile_c(SRC)
            assert compile_cache_stats()["translations"] == 1
            set_artifact_store(
                ArtifactStore(root,
                              schema_version=STORE_SCHEMA_VERSION + 1))
            clear_compile_cache()
            compile_c(SRC)
            assert compile_cache_stats()["translations"] == 1
        finally:
            set_artifact_store(previous)
            clear_compile_cache()
