"""Unit tests for the memory object models (paper §2, §5.9)."""

import pytest

from repro.ctypes import LP64, QualType, TagEnv
from repro.ctypes.types import Integer, IntKind
from repro.memory import (
    ConcreteModel, MemoryError_, MemoryOptions, ProvenanceModel,
    StrictIsoModel,
)
from repro.memory.values import (
    IntegerValue, MVInteger, PointerValue, PROV_EMPTY, PROV_WILDCARD,
)

_INT = Integer(IntKind.INT)
_QINT = QualType(_INT)


def iv(n):
    return MVInteger(_INT, IntegerValue(n))


class TestAllocation:
    def test_fresh_ids(self):
        m = ProvenanceModel(LP64, TagEnv())
        p1 = m.create(_INT, 4, "a", "static")
        p2 = m.create(_INT, 4, "b", "static")
        assert p1.prov != p2.prov
        assert p1.addr != p2.addr

    def test_alignment_respected(self):
        m = ProvenanceModel(LP64, TagEnv())
        m.create(Integer(IntKind.CHAR), 1, "c", "static")
        p = m.create(Integer(IntKind.LONG), 8, "l", "static")
        assert p.addr % 8 == 0

    def test_store_load_roundtrip(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        m.store(_QINT, p, iv(42))
        _, out = m.load(_QINT, p)
        assert out.ival.value == 42

    def test_kill_then_access(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "automatic")
        m.kill(p, dyn=False)
        with pytest.raises(MemoryError_) as e:
            m.load(_QINT, p)
        assert e.value.entry.name == "Access_dead_object"

    def test_double_free(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.alloc_region(16, 16)
        m.kill(p, dyn=True)
        with pytest.raises(MemoryError_) as e:
            m.kill(p, dyn=True)
        assert e.value.entry.name == "Free_invalid_pointer"

    def test_free_interior_pointer(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.alloc_region(16, 16)
        with pytest.raises(MemoryError_):
            m.kill(p.with_addr(p.addr + 4), dyn=True)

    def test_snapshot_restore(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        m.store(_QINT, p, iv(1))
        snap = m.snapshot()
        m.store(_QINT, p, iv(2))
        m.restore(snap)
        _, out = m.load(_QINT, p)
        assert out.ival.value == 1


class TestProvenanceChecking:
    def test_wrong_provenance_flagged(self):
        m = ProvenanceModel(LP64, TagEnv())
        p1 = m.create(_INT, 4, "a", "static")
        m.create(_INT, 4, "b", "static")
        with pytest.raises(MemoryError_) as e:
            m.store(_QINT, p1.with_addr(p1.addr + 4), iv(1))
        assert e.value.entry.name == "Access_wrong_provenance"

    def test_concrete_model_allows_adjacent(self):
        m = ConcreteModel(LP64, TagEnv())
        p1 = m.create(_INT, 4, "a", "static")
        p2 = m.create(_INT, 4, "b", "static")
        lo, hi = (p1, p2) if p1.addr < p2.addr else (p2, p1)
        if hi.addr - lo.addr == 4:
            m.store(_QINT, lo.with_addr(hi.addr), iv(9))
            _, out = m.load(_QINT, hi)
            assert out.ival.value == 9

    def test_null_access(self):
        m = ConcreteModel(LP64, TagEnv())
        with pytest.raises(MemoryError_) as e:
            m.load(_QINT, PointerValue(0))
        assert e.value.entry.name == "Null_pointer_dereference"

    def test_wildcard_provenance_allowed_on_live_object(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        wild = PointerValue(p.addr, PROV_WILDCARD)
        m.store(_QINT, wild, iv(3))
        _, out = m.load(_QINT, p)
        assert out.ival.value == 3

    def test_misaligned_access(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(Integer(IntKind.LONG), 8, "l", "static")
        with pytest.raises(MemoryError_) as e:
            m.load(_QINT, p.with_addr(p.addr + 1))
        assert e.value.entry.name == "Misaligned_access"


class TestPointerOps:
    def test_relational_same_object(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.alloc_region(16, 16)
        q = p.with_addr(p.addr + 8)
        assert m.relational("<", p, q) == 1
        assert m.relational(">=", p, q) == 0

    def test_relational_cross_object_defacto_ok(self):
        m = ProvenanceModel(LP64, TagEnv())
        a = m.create(_INT, 4, "a", "static")
        b = m.create(_INT, 4, "b", "static")
        assert m.relational("<", a, b) in (0, 1)  # permitted (Q25)

    def test_relational_cross_object_strict_ub(self):
        m = StrictIsoModel(LP64, TagEnv())
        a = m.create(_INT, 4, "a", "static")
        b = m.create(_INT, 4, "b", "static")
        with pytest.raises(MemoryError_) as e:
            m.relational("<", a, b)
        assert e.value.entry.name == "Relational_distinct_objects"

    def test_ptrdiff_same_object(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.alloc_region(40, 16)
        q = m.array_shift(p, _INT, IntegerValue(5))
        assert m.ptrdiff(_INT, q, p).value == 5

    def test_ptrdiff_cross_object_ub(self):
        m = ProvenanceModel(LP64, TagEnv())
        a = m.create(_INT, 4, "a", "static")
        b = m.create(_INT, 4, "b", "static")
        with pytest.raises(MemoryError_) as e:
            m.ptrdiff(_INT, a, b)
        assert e.value.entry.name == "Ptrdiff_distinct_objects"

    def test_oob_construction_allowed_defacto(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.alloc_region(16, 16)
        q = m.array_shift(p, _INT, IntegerValue(100))  # way OOB: fine
        back = m.array_shift(q, _INT, IntegerValue(-100))
        assert back.addr == p.addr

    def test_oob_construction_strict_ub(self):
        m = StrictIsoModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        with pytest.raises(MemoryError_) as e:
            m.array_shift(p, _INT, IntegerValue(5))
        assert e.value.entry.name == \
            "Out_of_bounds_pointer_arithmetic"

    def test_one_past_allowed_strict(self):
        m = StrictIsoModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        m.array_shift(p, _INT, IntegerValue(1))  # one-past ok

    def test_int_roundtrip_provenance(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        i = m.int_from_ptr(p, Integer(IntKind.ULONG))
        assert i.prov == p.prov
        back = m.ptr_from_int(i)
        assert back.prov == p.prov
        m.store(_QINT, back, iv(5))

    def test_equality_provenance_nondet(self):
        opts = MemoryOptions(check_provenance=True,
                             provenance_sensitive_equality=True)
        m = ProvenanceModel(LP64, TagEnv(), opts)
        choices = []
        m.choose = lambda tag, n: choices.append(tag) or 0
        a = PointerValue(0x1000, 1)
        b = PointerValue(0x1000, 2)
        m.eq(a, b)
        assert choices == ["ptr-eq-provenance"]


class TestUninitPolicies:
    def test_unspecified_policy(self):
        m = ProvenanceModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        from repro.memory.values import MVUnspecified
        _, out = m.load(_QINT, p)
        assert isinstance(out, MVUnspecified)

    def test_ub_policy(self):
        m = StrictIsoModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        with pytest.raises(MemoryError_) as e:
            m.load(_QINT, p)
        assert e.value.entry.name == "Read_uninitialised"

    def test_stable_policy(self):
        m = ConcreteModel(LP64, TagEnv())
        p = m.create(_INT, 4, "x", "static")
        _, first = m.load(_QINT, p)
        _, second = m.load(_QINT, p)
        assert first.ival.value == second.ival.value  # §2.4 option 4

    def test_effective_types(self):
        from repro.ctypes.types import Floating, FloatKind
        m = StrictIsoModel(LP64, TagEnv())
        p = m.alloc_region(8, 8)
        fty = Floating(FloatKind.FLOAT)
        from repro.memory.values import FloatingValue, MVFloating
        m.store(QualType(fty), p, MVFloating(fty, FloatingValue(1.0)))
        with pytest.raises(MemoryError_) as e:
            m.load(_QINT, p)
        assert e.value.entry.name == "Effective_type_mismatch"
