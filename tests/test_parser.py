"""Unit tests for the parser (ISO C11 §6.5-6.9)."""

import pytest

from repro.cabs import ast as C
from repro.cparser import parse_text
from repro.errors import ParseError


def first_decl(src):
    return parse_text(src).decls[0]


def main_body(src):
    tu = parse_text(src)
    for d in tu.decls:
        if isinstance(d, C.FunctionDef):
            return d.body
    raise AssertionError("no function definition")


def parse_expr(text):
    body = main_body(f"int main(void) {{ {text}; }}")
    stmt = body.items[0]
    assert isinstance(stmt, C.SExpr)
    return stmt.expr


class TestDeclarations:
    def test_simple(self):
        d = first_decl("int x;")
        assert isinstance(d, C.Declaration)
        assert d.declarators[0].declarator.name == "x"

    def test_pointer_declarator(self):
        d = first_decl("int *p;")
        decl = d.declarators[0].declarator
        assert isinstance(decl, C.DPointer)
        assert isinstance(decl.inner, C.DIdent)

    def test_array_of_pointers_vs_pointer_to_array(self):
        d1 = first_decl("int *a[3];").declarators[0].declarator
        assert isinstance(d1, C.DPointer)      # wraps outward
        assert isinstance(d1.inner, C.DArray)
        d2 = first_decl("int (*a)[3];").declarators[0].declarator
        assert isinstance(d2, C.DArray)
        assert isinstance(d2.inner, C.DPointer)

    def test_function_pointer(self):
        d = first_decl("int (*fp)(int, char);")
        decl = d.declarators[0].declarator
        assert isinstance(decl, C.DFunction)
        assert isinstance(decl.inner, C.DPointer)
        assert len(decl.params) == 2

    def test_typedef_then_use(self):
        tu = parse_text("typedef int T; T x;")
        assert isinstance(tu.decls[1], C.Declaration)

    def test_typedef_shadowed_by_variable(self):
        # After `int T;` inside the block, T is an object, so `T * y`
        # is a multiplication, not a declaration.
        body = main_body(
            "typedef int T;\n"
            "int main(void) { int T = 2; int y = 0; T * y; }")
        assert isinstance(body.items[2], C.SExpr)
        assert isinstance(body.items[2].expr, C.EBinary)

    def test_struct_definition(self):
        d = first_decl("struct s { int a; char b; } v;")
        spec = d.specs.type_specs[0]
        assert isinstance(spec, C.TSStructOrUnion)
        assert len(spec.members) == 2

    def test_enum(self):
        d = first_decl("enum e { A, B = 5, C };")
        spec = d.specs.type_specs[0]
        assert isinstance(spec, C.TSEnum)
        assert [name for name, _ in spec.enumerators] == ["A", "B",
                                                          "C"]

    def test_anonymous_struct_tag(self):
        d = first_decl("struct { int x; } v;")
        spec = d.specs.type_specs[0]
        assert spec.tag is None

    def test_multiple_declarators(self):
        d = first_decl("int a, *b, c[4];")
        assert len(d.declarators) == 3

    def test_static_assert(self):
        d = first_decl('_Static_assert(1, "msg");')
        assert isinstance(d, C.StaticAssert)

    def test_qualifiers(self):
        d = first_decl("const volatile int x;")
        assert set(d.specs.qualifiers) == {"const", "volatile"}


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, C.EBinary) and e.op == "+"
        assert isinstance(e.rhs, C.EBinary) and e.rhs.op == "*"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-" and isinstance(e.lhs, C.EBinary)

    def test_assignment_right_assoc(self):
        e = parse_expr("a = b = 1")
        assert isinstance(e, C.EAssign)
        assert isinstance(e.rhs, C.EAssign)

    def test_conditional(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e, C.EConditional)
        assert isinstance(e.els, C.EConditional)

    def test_cast_vs_paren(self):
        tu = "typedef int T;\nint main(void) { (T)1; (x)+1; }"
        body = main_body(tu)
        cast = body.items[0].expr
        assert isinstance(cast, C.ECast)
        add = body.items[1].expr
        assert isinstance(add, C.EBinary)

    def test_sizeof_type_vs_expr(self):
        assert isinstance(parse_expr("sizeof(int)"), C.ESizeofType)
        assert isinstance(parse_expr("sizeof x"), C.ESizeofExpr)
        assert isinstance(parse_expr("sizeof(x)"), C.ESizeofExpr)

    def test_postfix_chain(self):
        e = parse_expr("a.b->c[1](2)")
        assert isinstance(e, C.ECall)
        assert isinstance(e.func, C.EIndex)

    def test_unary_chain(self):
        e = parse_expr("*&x")
        assert isinstance(e, C.EUnary) and e.op == "*"
        assert isinstance(e.operand, C.EUnary)

    def test_pre_and_post_incr(self):
        assert isinstance(parse_expr("++x"), C.EPreIncr)
        assert isinstance(parse_expr("x++"), C.EPostIncr)

    def test_comma(self):
        e = parse_expr("a, b, c")
        assert isinstance(e, C.EComma)

    def test_string_concatenation(self):
        e = parse_expr('"ab" "cd"')
        assert isinstance(e, C.EStringLit)
        assert e.value == b"abcd"

    def test_compound_literal(self):
        e = parse_expr("(struct s){1, 2}",)

    def test_integer_constant_classification(self):
        e = parse_expr("0x1Fu")
        assert isinstance(e, C.EIntConst)
        assert (e.value, e.base, e.suffix) == (31, 16, "u")

    def test_float_constant(self):
        e = parse_expr("1.5e2f")
        assert isinstance(e, C.EFloatConst)
        assert e.value == 150.0 and e.suffix == "f"


class TestStatements:
    def test_if_else_binds_to_nearest(self):
        body = main_body(
            "int main(void) { if (a) if (b) x; else y; }")
        outer = body.items[0]
        assert isinstance(outer, C.SIf)
        assert outer.els is None
        assert outer.then.els is not None

    def test_for_with_decl(self):
        body = main_body(
            "int main(void) { for (int i = 0; i < 3; i++) ; }")
        stmt = body.items[0]
        assert isinstance(stmt, C.SFor)
        assert isinstance(stmt.init, C.Declaration)

    def test_do_while(self):
        body = main_body("int main(void) { do x; while (y); }")
        assert isinstance(body.items[0], C.SDoWhile)

    def test_switch_cases(self):
        body = main_body(
            "int main(void) { switch (x) { case 1: ; default: ; } }")
        sw = body.items[0]
        assert isinstance(sw, C.SSwitch)

    def test_labels_and_goto(self):
        body = main_body("int main(void) { goto l; l: ; }")
        assert isinstance(body.items[0], C.SGoto)
        assert isinstance(body.items[1], C.SLabeled)

    def test_label_vs_expression_ambiguity(self):
        # `x:` is a label even though x could be an expression start.
        body = main_body("int main(void) { int x = 0; x: x = 1; }")
        assert isinstance(body.items[1], C.SLabeled)


class TestInitializers:
    def test_designated(self):
        d = first_decl("struct p { int x, y; };")
        tu = parse_text(
            "struct p { int x, y; }; struct p v = { .y = 2, .x = 1 };")
        init = tu.decls[1].declarators[0].init
        assert isinstance(init, C.InitList)
        designators = init.items[0][0]
        assert isinstance(designators[0], C.DesignMember)

    def test_array_index_designator(self):
        tu = parse_text("int a[5] = { [2] = 7 };")
        init = tu.decls[0].declarators[0].init
        assert isinstance(init.items[0][0][0], C.DesignIndex)

    def test_nested_braces(self):
        tu = parse_text("int m[2][2] = { {1, 2}, {3, 4} };")
        init = tu.decls[0].declarators[0].init
        assert isinstance(init.items[0][1], C.InitList)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_text("int x")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse_text("int main(void) { 1 + ; }")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse_text("int main(void) { ")
