"""The default (DFS, no-POR) explorer: oracle replay, full behaviour
enumeration (paper §5.1 "exhaustive search for all allowed
executions").  This is the oracle-of-record configuration the other
strategies and partial-order reduction are tested against."""

from repro.dynamics.driver import Oracle


class TestOracle:
    def test_replay_prefix(self):
        o = Oracle([1, 0, 2])
        assert o.choose("a", 3) == 1
        assert o.choose("b", 2) == 0
        assert o.choose("c", 4) == 2
        assert o.choose("d", 5) == 0  # beyond prefix: default
        assert not o.diverged

    def test_stale_choice_clamped_and_flagged(self):
        # A replayed choice beyond the current arity is clamped (old
        # behaviour) but now flags divergence so the explorer can
        # discard the path instead of silently mis-replaying it.
        o = Oracle([7])
        assert o.choose("a", 2) == 1
        assert o.diverged

    def test_trace_records_arity(self):
        o = Oracle()
        o.choose("x", 3)
        assert o.trace == [("x", 3, 0)]

    def test_events_record_choice_metadata(self):
        o = Oracle(record_events=True)
        o.choose("unseq", 2, (4, (0, 1)))
        assert o.events == [("choose", "unseq", 2, 0, (4, (0, 1)))]

    def test_plain_oracle_skips_event_log(self):
        # Single-run oracles must not accumulate an unbounded event
        # list nothing reads; only the explorer turns recording on.
        o = Oracle()
        o.choose("nd", 2)
        o.note_action("store", None, True, (), True)
        assert o.events is None


class TestExploration:
    def test_nd_outcomes_counted(self, explore):
        # Q2-style provenance-sensitive equality: both results occur.
        from repro.memory.base import MemoryOptions
        res = explore(r'''
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
    int *p = &x + 1;
    int *q = &y;
    if (p == q) printf("eq\n"); else printf("neq\n");
    return 0;
}''', model="provenance",
            options=MemoryOptions(check_provenance=True,
                                  provenance_sensitive_equality=True),
            max_paths=50)
        outs = {o.stdout for o in res.outcomes}
        assert outs == {"eq\n", "neq\n"}

    def test_exploration_exhausts_small_space(self, explore):
        res = explore(r'''
int f(void) { return 1; }
int main(void) { return f() + f() - 2; }''', max_paths=100)
        assert res.exhausted
        assert all(o.exit_code == 0 for o in res.outcomes)

    def test_budget_limits(self, explore):
        res = explore(r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) {
    pr('a') + pr('b');
    pr('c') + pr('d');
    pr('e') + pr('f');
    return 0;
}''', max_paths=4)
        assert not res.exhausted
        assert res.paths_run == 4

    def test_ub_found_on_some_path_only(self, explore):
        # The UB (double-write race) exists on *every* path here, but
        # exhaustive mode must report it even while other outcomes
        # exist in partial exploration.
        res = explore("int main(void){ int x; "
                      "int y = (x = 1) + (x = 2); return 0; }",
                      max_paths=50)
        assert res.has_ub()
        assert "Unsequenced_race" in res.ub_names()

    def test_distinct_deduplicates(self, explore):
        res = explore(r'''
int f(void) { return 3; }
int main(void) { return f() + f() - 6; }''', max_paths=100)
        assert len(res.distinct()) == 1
