"""Tool personae reproducing the §3 comparison shape."""

import pytest

from repro.tools import PERSONAE, run_persona_suite


def verdict_counts(results):
    counts = {"ok": 0, "flagged": 0, "failed": 0}
    for r in results:
        if r.verdict.startswith("ok"):
            counts["ok"] += 1
        elif r.verdict.startswith("ub"):
            counts["flagged"] += 1
        else:
            counts["failed"] += 1
    return counts


@pytest.fixture(scope="module")
def all_results():
    return {name: run_persona_suite(name) for name in PERSONAE}


class TestPersonae:
    def test_three_personae(self):
        assert set(PERSONAE) == {"sanitizers", "tis", "kcc"}

    def test_sanitizers_flag_few(self, all_results):
        # Paper §3: "we were surprised at how few of our tests
        # triggered warnings".
        c = verdict_counts(all_results["sanitizers"])
        assert c["failed"] == 0
        assert c["ok"] > c["flagged"]

    def test_tis_flags_many_more(self, all_results):
        san = verdict_counts(all_results["sanitizers"])
        tis = verdict_counts(all_results["tis"])
        assert tis["flagged"] > san["flagged"]

    def test_kcc_fails_on_many(self, all_results):
        # Paper §3: "'Execution failed' for the tests of 20 of our
        # questions" — a sizable failed set, unlike the others.
        kcc = verdict_counts(all_results["kcc"])
        assert kcc["failed"] >= 8
        assert verdict_counts(all_results["tis"])["failed"] == 0

    def test_radically_different_profiles(self, all_results):
        profiles = {name: tuple(verdict_counts(rs).values())
                    for name, rs in all_results.items()}
        assert len(set(profiles.values())) == 3

    def test_sanitizers_pass_padding_tests(self, all_results):
        # §3: "All 13 of our structure-padding tests ... ran without
        # any sanitiser warnings".
        for r in all_results["sanitizers"]:
            if r.test.startswith("padding_"):
                assert r.verdict.startswith("ok"), r

    def test_sanitizers_pass_unspec_value_tests(self, all_results):
        # §3/Q49: an unspecified value reaches printf unnoticed...
        results = {r.test: r for r in all_results["sanitizers"]}
        assert results["unspec_to_library"].verdict.startswith("ok")

    def test_sanitizers_catch_wild_pointers(self, all_results):
        # ...but ASan does catch treating an arbitrary integer as a
        # pointer.
        results = {r.test: r for r in all_results["sanitizers"]}
        assert results["fabricated_pointer"].verdict.startswith("ub")

    def test_tis_flags_uninit(self, all_results):
        results = {r.test: r for r in all_results["tis"]}
        assert results["uninit_read"].verdict.startswith("ub")

    def test_kcc_fails_pointer_byte_tests(self, all_results):
        results = {r.test: r for r in all_results["kcc"]}
        assert results["ptr_copy_memcpy"].verdict.startswith("failed")
        assert results["provenance_basic_global_yx"].verdict.\
            startswith("failed")
