"""The pipeline facade and command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.ctypes import ILP32
from repro.pipeline import (
    MODELS, clear_compile_cache, compile_c, compile_cache_stats,
    explore_c, explore_many, run_c, run_many,
)


class TestPipeline:
    def test_models_registered(self):
        assert set(MODELS) == {"concrete", "provenance", "strict",
                               "cheri", "gcc"}

    def test_compile_reusable_across_models(self):
        pipe = compile_c("int main(void){ return 0; }")
        for model in ("concrete", "provenance", "strict"):
            out = pipe.run(model)
            assert out.exit_code == 0

    def test_ilp32_sizes(self):
        out = run_c(r'''
#include <stdio.h>
int main(void) {
    printf("%d %d %d\n", (int)sizeof(long), (int)sizeof(void*),
           (int)sizeof(long long));
    return 0;
}''', impl=ILP32)
        assert out.stdout == "4 4 8\n"

    def test_lp64_sizes(self):
        out = run_c(r'''
#include <stdio.h>
int main(void) {
    printf("%d %d\n", (int)sizeof(long), (int)sizeof(void*));
    return 0;
}''')
        assert out.stdout == "8 8\n"

    def test_seeded_random_exploration(self):
        src = r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); return 0; }'''
        outs = {run_c(src, seed=s).stdout for s in range(12)}
        assert outs == {"ab", "ba"}

    def test_max_steps_timeout(self):
        out = run_c("int main(void){ while (1) ; return 0; }",
                    max_steps=5000)
        assert out.status == "timeout"

    def test_explore_returns_result(self):
        res = explore_c("int main(void){ return 0; }")
        assert res.paths_run == 1
        assert res.exhausted


class TestCompileCache:
    SRC = "int main(void){ return 41 + 1; }"

    def test_cache_returns_same_artifact(self):
        clear_compile_cache()
        a = compile_c(self.SRC)
        b = compile_c(self.SRC)
        assert a is b
        stats = compile_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_cache_bypass_and_key_discrimination(self):
        clear_compile_cache()
        a = compile_c(self.SRC)
        fresh = compile_c(self.SRC, use_cache=False)
        assert fresh is not a
        assert compile_cache_stats()["size"] == 1
        other_impl = compile_c(self.SRC, impl=ILP32)
        other_src = compile_c("int main(void){ return 42; }")
        assert other_impl is not a
        assert other_src is not a
        assert compile_cache_stats()["size"] == 3

    def test_clear_resets(self):
        compile_c(self.SRC)
        clear_compile_cache()
        stats = compile_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0,
                         "translations": 0, "store_hits": 0,
                         "size": 0}

    def test_translations_counted(self):
        clear_compile_cache()
        compile_c(self.SRC)
        compile_c(self.SRC)                     # in-memory hit
        stats = compile_cache_stats()
        assert stats["translations"] == 1
        compile_c(self.SRC, use_cache=False)    # bypass still counts
        assert compile_cache_stats()["translations"] == 2


class TestBatchExecution:
    # Observable on every model, with model-divergent UB available via
    # the uninitialised read below.
    SRC = r'''
#include <stdio.h>
int main(void) {
    unsigned u = 7;
    printf("%u %u\n", u, -1);
    return 0;
}'''

    DIVERGENT = r'''
int main(void) {
    int x;
    int y = x;
    return 0;
}'''

    def test_run_many_matches_individual_run_c(self):
        many = run_many(self.SRC)
        assert list(many) == list(MODELS)
        for model in MODELS:
            solo = run_c(self.SRC, model=model)
            o = many[model]
            assert (o.status, o.exit_code, o.stdout, o.ub) == \
                (solo.status, solo.exit_code, solo.stdout, solo.ub)

    def test_run_many_preserves_model_divergence(self):
        many = run_many(self.DIVERGENT)
        for model in MODELS:
            solo = run_c(self.DIVERGENT, model=model)
            o = many[model]
            assert (o.status, o.ub) == (solo.status, solo.ub)
        assert many["strict"].status == "ub"
        assert many["concrete"].status == "done"

    def test_run_many_compiles_once_per_impl(self):
        clear_compile_cache()
        run_many(self.SRC)
        stats = compile_cache_stats()
        # One translation per distinct implementation environment,
        # shared across all five models without even consulting the
        # cache again.
        assert stats["misses"] == 2     # LP64 + CHERI128
        assert stats["hits"] == 0
        run_many(self.SRC)              # warm: both impls cache-hit
        stats = compile_cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 2

    def test_run_many_model_subset(self):
        many = run_many(self.SRC, models=["gcc", "concrete"])
        assert list(many) == ["gcc", "concrete"]

    def test_explore_many_matches_explore_c(self):
        src = r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); return 0; }'''
        many = explore_many(src, models=["concrete", "provenance"])
        for model, res in many.items():
            solo = explore_c(src, model=model)
            assert res.paths_run == solo.paths_run
            assert res.behaviours() == solo.behaviours()
            assert {o.stdout for o in res.distinct()} == {"ab", "ba"}

    def test_suite_sweep_matches_per_model_suites(self):
        from repro.testsuite import TESTS, run_suite, run_suite_many
        names = sorted(TESTS)[:6]
        sweep = run_suite_many(["concrete", "strict"], names=names)
        singles = [r for model in ["concrete", "strict"]
                   for r in run_suite(model, names=names).results]
        sweep_key = {(r.name, r.model): r.verdict
                     for r in sweep.results}
        single_key = {(r.name, r.model): r.verdict for r in singles}
        assert sweep_key == single_key


class TestCli:
    def _write(self, tmp_path, source):
        f = tmp_path / "prog.c"
        f.write_text(source)
        return str(f)

    def test_run_ok(self, tmp_path, capsys):
        path = self._write(tmp_path,
                           '#include <stdio.h>\n'
                           'int main(void){ printf("hi\\n"); '
                           'return 0; }')
        code = cli_main([path])
        assert code == 0
        assert capsys.readouterr().out == "hi\n"

    def test_exit_code_propagates(self, tmp_path):
        path = self._write(tmp_path, "int main(void){ return 5; }")
        assert cli_main([path]) == 5

    def test_ub_reported(self, tmp_path, capsys):
        path = self._write(tmp_path,
                           "int main(void){ int x = 2147483647; "
                           "return x + 1; }")
        code = cli_main([path])
        assert code == 1
        assert "Exceptional_condition" in capsys.readouterr().err

    def test_static_error_reported(self, tmp_path, capsys):
        path = self._write(tmp_path, "int main(void){ return y; }")
        assert cli_main([path]) == 2
        assert "desugaring" in capsys.readouterr().err

    def test_pp_core(self, tmp_path, capsys):
        path = self._write(tmp_path, "int main(void){ return 1 << 2; }")
        assert cli_main([path, "--pp-core"]) == 0
        out = capsys.readouterr().out
        assert "proc main" in out

    def test_exhaustive_mode(self, tmp_path, capsys):
        path = self._write(tmp_path, r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); return 0; }''')
        code = cli_main([path, "--exhaustive", "--max-paths", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "executions explored" in out
        assert "ab" in out and "ba" in out

    def test_exhaustive_strategy_flag(self, tmp_path, capsys):
        path = self._write(tmp_path, r'''
#include <stdio.h>
int pr(int c) { putchar(c); return 0; }
int main(void) { pr('a') + pr('b'); return 0; }''')
        for strategy in ("dfs", "bfs", "random", "coverage"):
            code = cli_main([path, "--exhaustive", "--max-paths",
                             "300", "--strategy", strategy,
                             "--seed", "3"])
            assert code == 0
            out = capsys.readouterr().out
            assert "ab" in out and "ba" in out, strategy

    def test_exhaustive_por_flag(self, tmp_path, capsys):
        path = self._write(tmp_path,
                           "int a, b; int main(void)"
                           "{ (a=1)+(b=2); return a+b-3; }")
        assert cli_main([path, "--exhaustive"]) == 0
        base = capsys.readouterr().out
        assert cli_main([path, "--exhaustive", "--por"]) == 0
        por = capsys.readouterr().out
        assert "pruned" in por and "pruned" not in base
        assert "exit=0" in por

    def test_exhaustive_explore_jobs(self, tmp_path, capsys):
        path = self._write(tmp_path,
                           "int a, b; int main(void)"
                           "{ (a=1)+(b=2); return a+b-3; }")
        code = cli_main([path, "--exhaustive", "--explore-jobs", "2",
                         "--max-paths", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "executions explored: 576 (complete)" in out

    def test_explore_jobs_rejected_with_models(self, tmp_path, capsys):
        # Two fan-out axes at once: refuse loudly, don't silently run
        # an unsharded per-model exploration.
        path = self._write(tmp_path, "int main(void){ return 0; }")
        code = cli_main([path, "--models", "all", "--exhaustive",
                         "--explore-jobs", "4"])
        assert code == 2
        assert "--explore-jobs" in capsys.readouterr().err

    def test_model_flag(self, tmp_path):
        path = self._write(tmp_path, r'''
int main(void) {
    unsigned int x;
    unsigned int y = x;  /* uninit read: UB under strict only */
    return 0;
}''')
        assert cli_main([path, "--model", "concrete"]) == 0
        assert cli_main([path, "--model", "strict"]) == 1

    def test_missing_file(self, capsys):
        assert cli_main(["/nonexistent/prog.c"]) == 2

    def test_models_batch_flag(self, tmp_path, capsys):
        path = self._write(tmp_path, r'''
int main(void) {
    unsigned int x;
    unsigned int y = x;  /* uninit read: UB under strict only */
    return 0;
}''')
        code = cli_main([path, "--models", "concrete,strict"])
        out = capsys.readouterr().out
        assert code == 1                      # strict flags UB
        assert "concrete" in out and "strict" in out
        assert "Read_uninitialised" in out
        assert cli_main([path, "--models", "concrete,gcc"]) == 0

    def test_models_batch_exit_codes(self, tmp_path, capsys):
        slow = self._write(tmp_path,
                           "int main(void){ while (1) ; return 0; }")
        code = cli_main([slow, "--models", "concrete,gcc",
                         "--max-steps", "5000"])
        capsys.readouterr()
        assert code == 3                      # timeout, as single mode
        pp = self._write(tmp_path, "int main(void){ return 1 << 2; }")
        code = cli_main([pp, "--models", "all", "--pp-core"])
        out = capsys.readouterr().out
        assert code == 0                      # --pp-core wins
        assert "proc main" in out

    def test_models_all_and_unknown(self, tmp_path, capsys):
        path = self._write(tmp_path,
                           "int main(void){ return 0; }")
        assert cli_main([path, "--models", "all"]) == 0
        out = capsys.readouterr().out
        assert all(m in out for m in MODELS)
        assert cli_main([path, "--models", "nope"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestUnspecifiedOptions:
    """§2.4/§2.5: the uninit and padding semantic options diverge
    observably — the E15 experiment's core claims."""

    UNINIT = r'''
#include <stdio.h>
int main(void) {
    unsigned int x;
    unsigned int a = x, b = x;
    printf("%d\n", a == b);
    return 0;
}'''

    def test_option_stable_vs_ub(self):
        from repro.memory.base import MemoryOptions
        stable = run_c(self.UNINIT, model="concrete")
        assert stable.stdout == "1\n"   # option (4): stable
        strict = run_c(self.UNINIT, model="strict")
        assert strict.status == "ub"    # option (1): UB

    PADDING = r'''
#include <stdio.h>
#include <string.h>
struct padded { char c; int i; };
int main(void) {
    struct padded s;
    memset(&s, 0, sizeof(s));
    unsigned char *bytes = (unsigned char *)&s;
    s.c = 'x';
    printf("%d\n", bytes[1]);
    return 0;
}'''

    def test_padding_keep_vs_unspec(self):
        from repro.memory.base import MemoryOptions
        keep = run_c(self.PADDING, model="concrete")
        assert keep.stdout == "0\n"     # option (4): untouched
        opts = MemoryOptions(uninit_read="stable",
                             padding_on_member_store="zero")
        zero = run_c(self.PADDING, model="concrete", options=opts)
        assert zero.stdout == "0\n"     # option (3): zeroed
        opts2 = MemoryOptions(uninit_read="unspecified",
                              padding_on_member_store="unspec")
        unspec = run_c(self.PADDING, model="concrete", options=opts2)
        assert unspec.stdout == "<unspec>\n"  # option (2)
