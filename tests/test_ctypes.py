"""Unit and property tests for C types, implementation environments,
layout, and integer conversions (ISO §6.2.5-6.3.1)."""

from hypothesis import given, strategies as st

from repro.ctypes import (
    ILP32, LP64, CHERI128, Implementation, Member, QualType, TagEnv,
    convert_integer_value, integer_promotion, integer_rank,
    is_representable, usual_arithmetic_conversions,
)
from repro.ctypes.types import (
    Array, Integer, IntKind, Pointer, StructRef, UnionRef, NO_QUALS,
)

_ALL_KINDS = list(IntKind)
_kind = st.sampled_from(_ALL_KINDS)


class TestRanges:
    def test_lp64_sizes(self):
        assert LP64.sizeof_int(IntKind.INT) == 4
        assert LP64.sizeof_int(IntKind.LONG) == 8
        assert LP64.pointer_size == 8

    def test_ilp32_long_is_4(self):
        assert ILP32.sizeof_int(IntKind.LONG) == 4
        assert ILP32.pointer_size == 4

    def test_cheri_pointers_are_16(self):
        assert CHERI128.pointer_size == 16
        assert CHERI128.capability_pointers

    def test_int_limits(self):
        assert LP64.int_max(IntKind.INT) == 2**31 - 1
        assert LP64.int_min(IntKind.INT) == -(2**31)
        assert LP64.int_max(IntKind.UINT) == 2**32 - 1
        assert LP64.int_min(IntKind.UINT) == 0
        assert LP64.int_max(IntKind.BOOL) == 1

    def test_char_signedness(self):
        assert LP64.is_signed(IntKind.CHAR)
        assert not LP64.is_signed(IntKind.UCHAR)


class TestPromotions:
    def test_char_promotes_to_int(self):
        for kind in (IntKind.CHAR, IntKind.SCHAR, IntKind.UCHAR,
                     IntKind.SHORT, IntKind.USHORT, IntKind.BOOL):
            assert integer_promotion(Integer(kind), LP64) == \
                Integer(IntKind.INT)

    def test_int_and_above_unchanged(self):
        for kind in (IntKind.INT, IntKind.UINT, IntKind.LONG,
                     IntKind.ULLONG):
            assert integer_promotion(Integer(kind), LP64) == \
                Integer(kind)

    def test_usual_int_uint(self):
        assert usual_arithmetic_conversions(
            Integer(IntKind.INT), Integer(IntKind.UINT), LP64) == \
            Integer(IntKind.UINT)

    def test_usual_uint_long_lp64(self):
        # long (64-bit) can represent all uint values -> long.
        assert usual_arithmetic_conversions(
            Integer(IntKind.UINT), Integer(IntKind.LONG), LP64) == \
            Integer(IntKind.LONG)

    def test_usual_uint_long_ilp32(self):
        # long (32-bit) cannot represent all uint -> unsigned long.
        assert usual_arithmetic_conversions(
            Integer(IntKind.UINT), Integer(IntKind.LONG), ILP32) == \
            Integer(IntKind.ULONG)

    @given(_kind, _kind)
    def test_usual_conversions_commute(self, a, b):
        x = usual_arithmetic_conversions(Integer(a), Integer(b), LP64)
        y = usual_arithmetic_conversions(Integer(b), Integer(a), LP64)
        assert x == y

    @given(_kind, _kind)
    def test_usual_conversion_rank_at_least_int(self, a, b):
        c = usual_arithmetic_conversions(Integer(a), Integer(b), LP64)
        assert integer_rank(c) >= integer_rank(Integer(IntKind.INT))


class TestConversion:
    @given(st.integers(-2**70, 2**70), _kind)
    def test_conversion_lands_in_range(self, value, kind):
        ty = Integer(kind)
        out, _ = convert_integer_value(value, ty, LP64)
        assert LP64.int_min(kind) <= out <= LP64.int_max(kind)

    @given(st.integers(-2**70, 2**70), _kind)
    def test_conversion_idempotent(self, value, kind):
        ty = Integer(kind)
        once, _ = convert_integer_value(value, ty, LP64)
        twice, _ = convert_integer_value(once, ty, LP64)
        assert once == twice

    @given(st.integers(-2**70, 2**70))
    def test_unsigned_conversion_is_modular(self, value):
        out, _ = convert_integer_value(value, Integer(IntKind.UINT),
                                       LP64)
        assert out == value % (2**32)

    def test_bool_conversion(self):
        assert convert_integer_value(0, Integer(IntKind.BOOL),
                                     LP64)[0] == 0
        assert convert_integer_value(42, Integer(IntKind.BOOL),
                                     LP64)[0] == 1

    def test_in_range_unchanged(self):
        out, note = convert_integer_value(100, Integer(IntKind.CHAR),
                                          LP64)
        assert out == 100 and note is None

    def test_signed_wrap_flagged_impl_defined(self):
        out, note = convert_integer_value(200, Integer(IntKind.SCHAR),
                                          LP64)
        assert out == 200 - 256
        assert note == "impl-defined"


class TestLayout:
    def _tags(self, members):
        tags = TagEnv()
        tag = tags.fresh_tag("s", is_union=False)
        tags.define(tag, [Member(n, QualType(t)) for n, t in members])
        return tags, StructRef(tag)

    def test_char_int_padding(self):
        tags, ref = self._tags([("c", Integer(IntKind.CHAR)),
                                ("i", Integer(IntKind.INT))])
        lay = LP64.layout(ref, tags)
        assert lay.size == 8
        assert lay.align == 4
        assert dict((n, o) for n, o, _ in lay.fields) == \
            {"c": 0, "i": 4}

    def test_padding_bytes(self):
        tags, ref = self._tags([("c", Integer(IntKind.CHAR)),
                                ("i", Integer(IntKind.INT))])
        assert LP64.padding_bytes(ref, tags) == [1, 2, 3]

    def test_tail_padding(self):
        tags, ref = self._tags([("i", Integer(IntKind.INT)),
                                ("c", Integer(IntKind.CHAR))])
        lay = LP64.layout(ref, tags)
        assert lay.size == 8  # padded to align 4
        assert LP64.padding_bytes(ref, tags) == [5, 6, 7]

    def test_nested_struct_padding_reported_at_element_offsets(self):
        # struct inner { int i; char c; }  -> tail padding [5, 6, 7]
        tags = TagEnv()
        inner = tags.fresh_tag("inner", is_union=False)
        tags.define(inner, [Member("i", QualType(Integer(IntKind.INT))),
                            Member("c", QualType(Integer(IntKind.CHAR)))])
        # struct outer { struct inner a; struct inner b; }
        outer = tags.fresh_tag("outer", is_union=False)
        tags.define(outer, [Member("a", QualType(StructRef(inner))),
                            Member("b", QualType(StructRef(inner)))])
        # The inner tail padding must appear at both element offsets —
        # consistent with offsetof(outer, b) == sizeof(inner) == 8.
        assert LP64.offsetof(StructRef(outer), "b", tags) == 8
        assert LP64.padding_bytes(StructRef(outer), tags) == \
            [5, 6, 7, 13, 14, 15]

    def test_array_of_structs_padding_at_every_element(self):
        tags = TagEnv()
        inner = tags.fresh_tag("inner", is_union=False)
        tags.define(inner, [Member("i", QualType(Integer(IntKind.INT))),
                            Member("c", QualType(Integer(IntKind.CHAR)))])
        outer = tags.fresh_tag("outer", is_union=False)
        tags.define(outer, [
            Member("arr", QualType(Array(QualType(StructRef(inner)), 2))),
            Member("tail", QualType(Integer(IntKind.CHAR)))])
        # 2 * inner (each with [5..7] padding) + char + outer tail pad.
        assert LP64.padding_bytes(StructRef(outer), tags) == \
            [5, 6, 7, 13, 14, 15, 17, 18, 19]

    def test_union_layout(self):
        tags = TagEnv()
        tag = tags.fresh_tag("u", is_union=True)
        tags.define(tag, [
            Member("c", QualType(Integer(IntKind.CHAR))),
            Member("l", QualType(Integer(IntKind.LONG)))])
        ref = UnionRef(tag)
        lay = LP64.layout(ref, tags)
        assert lay.size == 8 and lay.align == 8
        assert all(off == 0 for _, off, _ in lay.fields)

    def test_array_sizeof(self):
        tags = TagEnv()
        arr = Array(QualType(Integer(IntKind.INT)), 5)
        assert LP64.sizeof(arr, tags) == 20

    def test_offsetof(self):
        tags, ref = self._tags([("a", Integer(IntKind.CHAR)),
                                ("b", Integer(IntKind.SHORT)),
                                ("c", Integer(IntKind.LONG))])
        assert LP64.offsetof(ref, "b", tags) == 2
        assert LP64.offsetof(ref, "c", tags) == 8

    def test_pointer_members_cheri(self):
        tags = TagEnv()
        tag = tags.fresh_tag("s", is_union=False)
        tags.define(tag, [
            Member("p", QualType(Pointer(QualType(
                Integer(IntKind.INT))))),
            Member("i", QualType(Integer(IntKind.INT)))])
        lay = CHERI128.layout(StructRef(tag), tags)
        assert lay.size == 32  # 16-byte capability + int + padding
