"""Resume-equivalence of incremental re-exploration.

Exploration is a tree of independent subtrees, so a persisted frontier
is an exact cut through it: an interrupted campaign resumed from its
:class:`~repro.farm.explorestore.ExplorationRecord` must merge to a
result *identical* to an uninterrupted serial run — behaviour sets
(UB name + site), ``paths_run``, ``pruned`` and ``diverged``
accounting — across every search strategy × POR on/off, whether the
interruption was a path budget, a wall-clock deadline, or a simulated
process kill.
"""

import random

import pytest

from repro.farm.explorestore import ExplorationRecord, ExploreStore
from repro.farm.frontier import explore_farm
from repro.pipeline import compile_c

# One unseq pair: 576 paths unreduced, 41 with POR — wide enough to
# interrupt anywhere, quick to exhaust for exact comparisons.
PAIR = r'''
int a, b;
int main(void) { (a = 1) + (b = 2); return a + b - 3; }
'''

# An unsequenced race: the behaviour set contains genuine UB (name +
# site), so equivalence checks cover UB dedup keys too.
RACE = r'''
int a;
int main(void) { return (a = 1) + (a = 2); }
'''

BIG = 100_000
CONFIGS = [(s, por) for s in ("dfs", "bfs", "random", "coverage")
           for por in (False, True)]


@pytest.fixture(scope="module")
def program():
    return compile_c(PAIR)


@pytest.fixture(scope="module")
def serial(program):
    """Uninterrupted oracle-of-record runs, one per configuration."""
    return {(s, por): program.explore("concrete", max_paths=BIG,
                                      strategy=s, por=por, seed=11)
            for s, por in CONFIGS}


def _same(result, reference):
    assert result.paths_run == reference.paths_run
    assert result.pruned == reference.pruned
    assert result.diverged == reference.diverged
    assert result.exhausted == reference.exhausted
    assert result.behaviour_keys() == reference.behaviour_keys()


class TestBudgetResume:
    """Deterministic interruption: cut at a seeded random path budget,
    resume to completion, compare exactly."""

    @pytest.mark.parametrize("strategy,por", CONFIGS)
    def test_cut_and_resume_equals_serial(self, tmp_path, program,
                                          serial, strategy, por):
        reference = serial[(strategy, por)]
        rng = random.Random(hash((strategy, por)) & 0xFFFF)
        cut = rng.randrange(1, reference.paths_run)
        store = ExploreStore(tmp_path / "store")
        part = program.explore("concrete", max_paths=cut,
                               strategy=strategy, por=por, seed=11,
                               store=store)
        assert part.paths_run == cut
        assert not part.exhausted
        full = program.explore("concrete", max_paths=BIG,
                               strategy=strategy, por=por, seed=11,
                               store=store)
        _same(full, reference)
        assert store.stats()["resumes"] == 1
        # Everything ran exactly once, split across the two calls.
        assert store.stats()["live_paths"] == reference.paths_run

    def test_many_rounds_of_resumption(self, tmp_path, program,
                                       serial):
        """A chain of small budget increments converges to the serial
        result with no path run twice."""
        reference = serial[("dfs", False)]
        store = ExploreStore(tmp_path / "store")
        rng = random.Random(0xC0FFEE)
        budget = 0
        result = None
        while budget < reference.paths_run:
            budget += rng.randrange(25, 120)
            result = program.explore("concrete", max_paths=budget,
                                     strategy="dfs", seed=11,
                                     store=store)
        _same(result, reference)
        assert store.stats()["live_paths"] == reference.paths_run
        assert store.stats()["resumes"] >= 2

    def test_ub_behaviours_survive_resumption(self, tmp_path):
        program = compile_c(RACE)
        reference = program.explore("concrete", max_paths=BIG)
        assert reference.has_ub()
        store = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=3, store=store)
        full = program.explore("concrete", max_paths=BIG, store=store)
        _same(full, reference)
        assert sorted(full.ub_names()) == sorted(reference.ub_names())


class TestDeadlineResume:
    """Wall-clock interruption at randomized (seeded) deadlines: the
    nondeterministic cut point must never change the converged
    result — a deadline-aborted path is requeued uncounted and
    replayed in full by the resume."""

    @pytest.mark.parametrize("strategy,por", CONFIGS)
    def test_interrupt_resume_converges(self, tmp_path, program,
                                        serial, strategy, por):
        reference = serial[(strategy, por)]
        rng = random.Random(hash(("deadline", strategy, por)))
        store = ExploreStore(tmp_path / "store")
        result = None
        for _ in range(500):
            deadline = rng.uniform(0.005, 0.04)
            result = program.explore("concrete", max_paths=BIG,
                                     strategy=strategy, por=por,
                                     seed=11, store=store,
                                     deadline_s=deadline)
            if result.exhausted:
                break
        assert result is not None and result.exhausted, \
            "deadline-interrupted exploration never converged"
        _same(result, reference)
        assert store.stats()["live_paths"] == reference.paths_run


class TestKillResume:
    """A killed process leaves only the on-disk record: a *fresh*
    store handle (new process, same directory) resumes it."""

    def test_fresh_handle_resumes_partial(self, tmp_path, program,
                                          serial):
        reference = serial[("dfs", False)]
        root = tmp_path / "store"
        program.explore("concrete", max_paths=200, strategy="dfs",
                        seed=11, store=ExploreStore(root))
        fresh = ExploreStore(root)         # simulated new process
        full = program.explore("concrete", max_paths=BIG,
                               strategy="dfs", seed=11, store=fresh)
        _same(full, reference)
        assert fresh.stats()["resumes"] == 1
        assert fresh.stats()["live_paths"] == \
            reference.paths_run - 200

    def test_warm_hit_runs_zero_paths(self, tmp_path, program,
                                      serial):
        reference = serial[("dfs", False)]
        root = tmp_path / "store"
        program.explore("concrete", max_paths=BIG, strategy="dfs",
                        seed=11, store=ExploreStore(root))
        fresh = ExploreStore(root)
        warm = program.explore("concrete", max_paths=BIG,
                               strategy="dfs", seed=11, store=fresh)
        _same(warm, reference)
        assert fresh.stats()["hits"] == 1
        assert fresh.stats()["live_paths"] == 0    # zero paths re-run

    def test_resume_false_ignores_partial(self, tmp_path, program,
                                          serial):
        reference = serial[("dfs", False)]
        store = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=100, strategy="dfs",
                        seed=11, store=store)
        full = program.explore("concrete", max_paths=BIG,
                               strategy="dfs", seed=11, store=store,
                               resume=False)
        _same(full, reference)
        assert store.stats()["resumes"] == 0
        # The cold redo re-ran the first 100 paths.
        assert store.stats()["live_paths"] == \
            reference.paths_run + 100


class TestRestorableOrder:
    """``drain_interrupted`` puts the mid-run-aborted node where it
    pops *first* on resume — in front for queue-shaped strategies,
    last for LIFO dfs — so a resumed frontier continues in the
    uninterrupted pop order."""

    def test_orders_restore_the_interrupted_pop(self):
        from repro.dynamics.explore import PathNode, make_strategy
        a, b, c = (PathNode((0,)), PathNode((1,)), PathNode((2,)))
        for name in ("dfs", "bfs", "coverage"):
            s = make_strategy(name)
            for n in (a, b, c):
                s.push(n)
            aborted = s.pop()
            restorable = s.drain_interrupted(aborted)
            fresh = make_strategy(name)
            for n in restorable:
                fresh.push(n)
            assert fresh.pop() is aborted, name


class TestPartialRecordShape:
    def test_partial_record_is_resumable_cut(self, tmp_path, program):
        store = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=50, strategy="dfs",
                        seed=11, store=store)
        key = store.key(PAIR, program.impl, "concrete",
                        strategy="dfs", seed=11)
        rec = store.get(key)
        assert isinstance(rec, ExplorationRecord)
        assert not rec.complete
        assert rec.frontier                 # the cut, ready to resume
        assert rec.paths_run == 50
        assert rec.exhausted                # neutral under merge
        assert all(o.trace == [] for o in rec.outcomes)  # slimmed

    def test_diverged_loss_is_permanent_in_partial_records(self):
        """A diverged replay abandons its subtree forever — no
        frontier node re-mines it — so a partial record must keep
        ``exhausted=False`` or the resumed merge would falsely claim
        exhaustion an uninterrupted run denies."""
        from repro.dynamics.explore import (
            ExplorationResult, PathNode,
        )
        lossy = ExplorationResult(paths_run=5, diverged=1,
                                  exhausted=False)
        rec = ExplorationRecord.from_result(lossy, [PathNode((1,))])
        assert not rec.complete
        assert not rec.exhausted            # permanent loss survives
        merged = ExplorationResult.merge(
            [rec.to_result(),
             ExplorationResult(paths_run=3, exhausted=True)])
        assert not merged.exhausted
        # A deadline-abandoned path is the same kind of permanent
        # loss.
        cut_short = ExplorationResult(paths_run=5, abandoned=1,
                                      exhausted=False)
        assert not ExplorationRecord.from_result(
            cut_short, [PathNode((1,))]).exhausted
        # ... while a plain budget cut stays merge-neutral.
        cut = ExplorationResult(paths_run=5, exhausted=False)
        assert ExplorationRecord.from_result(
            cut, [PathNode((1,))]).exhausted

    def test_spent_budget_returns_partial_unexhausted(self, tmp_path,
                                                      program):
        store = ExploreStore(tmp_path / "store")
        first = program.explore("concrete", max_paths=50,
                                strategy="dfs", seed=11, store=store)
        again = program.explore("concrete", max_paths=50,
                                strategy="dfs", seed=11, store=store)
        assert again.paths_run == 50
        assert not again.exhausted
        assert again.behaviour_keys() == first.behaviour_keys()
        assert store.stats()["live_paths"] == 50   # nothing re-run


class TestRecordFidelity:
    """A warm result must never differ from what the identical cold
    call would compute: semantic knobs are part of the key, and a
    record covering more paths than the requested budget is neither
    served nor clobbered."""

    def test_memory_options_do_not_alias(self, tmp_path):
        from repro.memory.base import MemoryOptions
        program = compile_c("int main(void){ int x; return x == x; }")
        store = ExploreStore(tmp_path / "store")
        flagged = program.explore(
            "concrete", options=MemoryOptions(uninit_read="ub"),
            max_paths=BIG, store=store)
        assert flagged.has_ub()
        stable = program.explore(
            "concrete", options=MemoryOptions(uninit_read="stable"),
            max_paths=BIG, store=store)
        assert not stable.has_ub()     # not the cached "ub" verdict
        assert store.stats()["hits"] == 0
        assert store.stats()["stores"] == 2

    def test_small_budget_never_served_a_bigger_record(self, tmp_path,
                                                       program,
                                                       serial):
        reference = serial[("dfs", False)]
        store = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=BIG, strategy="dfs",
                        seed=11, store=store)
        cold = program.explore("concrete", max_paths=4,
                               strategy="dfs", seed=11)
        small = program.explore("concrete", max_paths=4,
                                strategy="dfs", seed=11, store=store)
        assert small.paths_run == cold.paths_run == 4
        assert not small.exhausted
        assert small.behaviour_keys() == cold.behaviour_keys()
        # ... and the fuller record survived: a full request still
        # warm-hits with zero paths re-run.
        before = store.stats()["live_paths"]
        warm = program.explore("concrete", max_paths=BIG,
                               strategy="dfs", seed=11, store=store)
        _same(warm, reference)
        assert store.stats()["live_paths"] == before


class TestDeadlineTooSmallForOnePath:
    def test_progress_is_forced_not_livelocked(self, tmp_path):
        """When not even one path fits the deadline, the path is
        *abandoned* — counted (each store-backed invocation advances
        at least one path, no livelock) but recorded as no behaviour:
        a deadline-dependent "timeout" must never enter a
        deadline-independent record."""
        slow = ("int main(void){ long i, s = 0;"
                " for (i = 0; i < 50000; i++) s += i;"
                " return (int)(s & 1); }")
        program = compile_c(slow)
        store = ExploreStore(tmp_path / "store")
        result = program.explore("concrete", max_paths=BIG,
                                 max_steps=10_000_000,
                                 deadline_s=0.001, store=store)
        assert result.paths_run == 1
        assert result.abandoned == 1
        assert result.outcomes == []       # no phantom behaviour
        assert not result.exhausted
        assert store.stats()["live_paths"] == 1
        # The permanent loss survives the record round-trip: a later
        # warm/resumed result can never claim exhaustion.
        key = store.key(slow, program.impl, "concrete",
                        max_steps=10_000_000)
        rec = store.get(key)
        assert rec is not None and not rec.exhausted


class TestStoreArgumentNormalisation:
    def test_explore_store_path_accepts_every_store_shape(self,
                                                          tmp_path):
        """``pathlib.Path`` has a ``.root`` attribute of its own (the
        filesystem root!) — normalisation must never mistake it for a
        store's directory."""
        from repro.farm.pool import explore_store_path
        from repro.farm.store import ArtifactStore
        p = tmp_path / "records"
        assert explore_store_path(None) is None
        assert explore_store_path(p) == str(p)
        assert explore_store_path(str(p)) == str(p)
        backing = ArtifactStore(p)
        assert explore_store_path(backing) == str(p)
        assert explore_store_path(ExploreStore(backing)) == str(p)


@pytest.mark.slow_sweep
class TestDeepResume:
    """The ``pytest -m slow_sweep`` lane: a much wider state space
    (three unseq assignments, tens of thousands of paths) interrupted
    many times at seeded deadlines — excluded from tier-1 by the
    ``addopts`` default in setup.cfg."""

    TRIPLE = ("int a, b, c; int main(void)"
              "{ (a = 1) + (b = 2) + (c = 3); return a + b + c - 6; }")

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "coverage"])
    def test_deep_deadline_resume(self, tmp_path, strategy):
        program = compile_c(self.TRIPLE)
        reference = program.explore("concrete", max_paths=1_000_000,
                                    strategy=strategy, por=True,
                                    seed=5)
        rng = random.Random(hash(("deep", strategy)))
        store = ExploreStore(tmp_path / "store")
        result = None
        for _ in range(2000):
            result = program.explore("concrete", max_paths=1_000_000,
                                     strategy=strategy, por=True,
                                     seed=5, store=store,
                                     deadline_s=rng.uniform(0.02, 0.1))
            if result.exhausted:
                break
        assert result is not None and result.exhausted
        _same(result, reference)
        assert store.stats()["live_paths"] == reference.paths_run


class TestFarmResume:
    """explore_farm publishes and resumes the same records: a farm
    warm hit re-runs zero paths, and a serial interruption can be
    finished by a sharded farm run (and vice versa)."""

    def test_farm_warm_hit(self, tmp_path, serial):
        reference = serial[("dfs", False)]
        es = ExploreStore(tmp_path / "store")
        cold = explore_farm(PAIR, model="concrete", max_paths=BIG,
                            jobs=2, explore_store=es)
        _same(cold, reference)
        warm = explore_farm(PAIR, model="concrete", max_paths=BIG,
                            jobs=2, explore_store=es)
        _same(warm, reference)
        assert es.stats()["live_paths"] == reference.paths_run

    def test_serial_interrupt_farm_finish(self, tmp_path, program,
                                          serial):
        reference = serial[("dfs", False)]
        es = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=150, strategy="dfs",
                        store=es)
        full = explore_farm(PAIR, model="concrete", max_paths=BIG,
                            jobs=2, explore_store=es)
        _same(full, reference)
        assert es.stats()["resumes"] == 1
        assert es.stats()["live_paths"] == reference.paths_run

    def test_farm_interrupt_serial_finish(self, tmp_path, program,
                                          serial):
        reference = serial[("dfs", False)]
        es = ExploreStore(tmp_path / "store")
        part = explore_farm(PAIR, model="concrete", max_paths=120,
                            jobs=2, explore_store=es)
        assert not part.exhausted
        full = program.explore("concrete", max_paths=BIG,
                               strategy="dfs", store=es)
        _same(full, reference)
        assert es.stats()["live_paths"] == reference.paths_run

    def test_farm_spent_budget_is_not_a_resume(self, tmp_path,
                                               program):
        """A farm call whose budget the record exactly spends runs
        nothing: no resume counted, no byte-identical re-put."""
        es = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=150, strategy="dfs",
                        store=es)
        again = explore_farm(PAIR, model="concrete", max_paths=150,
                             jobs=2, explore_store=es)
        assert not again.exhausted
        assert again.paths_run == 150      # served from the record
        stats = es.stats()
        assert stats["resumes"] == 0
        assert stats["stores"] == 1        # only the original put
        assert stats["live_paths"] == 150

    def test_overshot_record_still_serves_its_own_budget(self,
                                                         tmp_path,
                                                         program,
                                                         serial):
        """Ceiling-split shards can overshoot the budget, so a farm
        record's paths_run may exceed the max_paths that produced it.
        The stored producing budget proves the identical call made
        it: a repeat under the same budget is served from the record
        instead of silently re-exploring live every time."""
        from repro.dynamics.explore import ExplorationResult
        reference = serial[("dfs", False)]
        es = ExploreStore(tmp_path / "store")
        overshot = ExplorationResult(
            outcomes=list(reference.outcomes), exhausted=False,
            paths_run=110)                 # 110 paths from budget 100
        key = es.key(PAIR, program.impl, "concrete", strategy="dfs")
        es.put(key, ExplorationRecord.from_result(overshot,
                                                  budget=100))
        again = explore_farm(PAIR, model="concrete", max_paths=100,
                             jobs=2, explore_store=es)
        assert again.paths_run == 110      # served, not re-explored
        assert es.stats()["live_paths"] == 0
        # ... while a strictly smaller budget still refuses it.
        small = explore_farm(PAIR, model="concrete", max_paths=50,
                             jobs=2, explore_store=es)
        assert small.paths_run < 110
        assert es.stats()["live_paths"] > 0
        # ... and did not clobber the fuller record.
        assert es.get(key).paths_run == 110

    def test_farm_small_budget_leaves_bigger_record_intact(
            self, tmp_path, program, serial):
        """A farm request under a smaller budget than the record
        covers runs live and must not clobber the fuller record."""
        reference = serial[("dfs", False)]
        es = ExploreStore(tmp_path / "store")
        program.explore("concrete", max_paths=150, strategy="dfs",
                        store=es)
        small = explore_farm(PAIR, model="concrete", max_paths=60,
                             jobs=2, explore_store=es)
        assert not small.exhausted
        # Ran live near its budget (the ceiling split can overshoot
        # by at most one path per shard), not the record's 150.
        assert small.paths_run < 100
        assert es.stats()["stores"] == 1   # record not clobbered
        full = explore_farm(PAIR, model="concrete", max_paths=BIG,
                            jobs=2, explore_store=es)
        _same(full, reference)             # resumed from the record

    def test_farm_por_resume(self, tmp_path, serial):
        reference = serial[("dfs", True)]
        es = ExploreStore(tmp_path / "store")
        part = explore_farm(PAIR, model="concrete", max_paths=15,
                            jobs=2, por=True, explore_store=es)
        assert not part.exhausted
        full = explore_farm(PAIR, model="concrete", max_paths=BIG,
                            jobs=2, por=True, explore_store=es)
        _same(full, reference)
        assert es.stats()["live_paths"] == reference.paths_run
