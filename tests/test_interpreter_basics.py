"""End-to-end interpreter tests: arithmetic, conversions, control flow
(ISO §6.5, §6.8; paper §5.5)."""

import pytest


class TestArithmetic:
    def test_integer_ops(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%d %d %d %d %d\n", 7+3, 7-3, 7*3, 7/3, 7%3);
    printf("%d %d %d\n", -7/3, -7%3, 7/-3);
    return 0;
}''')
        assert out.stdout == "10 4 21 2 1\n-2 -1 -2\n"

    def test_truncating_division(self, run_ok):
        # §6.5.5p6: truncation toward zero.
        out = run_ok(r'''
#include <stdio.h>
int main(void) { printf("%d %d\n", -9/2, -9%2); return 0; }''')
        assert out.stdout == "-4 -1\n"

    def test_bitwise(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%d %d %d %d\n", 12 & 10, 12 | 10, 12 ^ 10, ~0);
    return 0;
}''')
        assert out.stdout == "8 14 6 -1\n"

    def test_shifts(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    printf("%d %d %u\n", 1 << 10, 1024 >> 3, 3u << 31);
    return 0;
}''')
        assert out.stdout == "1024 128 2147483648\n"

    def test_unsigned_wraparound(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    unsigned int x = 0u;
    printf("%u\n", x - 1u);
    return 0;
}''')
        assert out.stdout == "4294967295\n"

    def test_minus_one_lt_unsigned_zero(self, run_ok):
        # Paper §5.5: -1 < (unsigned int)0 evaluates to 0.
        out = run_ok(r'''
#include <stdio.h>
int main(void) { printf("%d\n", -1 < (unsigned int)0); return 0; }''')
        assert out.stdout == "0\n"

    def test_integer_promotion_char_arith(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    char a = 100, b = 100;
    int c = a + b;          /* promoted: no char overflow */
    printf("%d\n", c);
    return 0;
}''')
        assert out.stdout == "200\n"

    def test_signed_char_wrap_on_assignment(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    signed char c = 200;    /* impl-defined: wraps like GCC */
    printf("%d\n", c);
    return 0;
}''')
        assert out.stdout == "-56\n"

    def test_logical_short_circuit(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int side(int r) { printf("side "); return r; }
int main(void) {
    int a = 0 && side(1);
    int b = 1 || side(1);
    int c = 1 && side(0);
    printf("%d %d %d\n", a, b, c);
    return 0;
}''')
        assert out.stdout == "side 0 1 0\n"

    def test_conditional_operator(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 5;
    printf("%d %d\n", x > 3 ? 10 : 20, x < 3 ? 10 : 20);
    return 0;
}''')
        assert out.stdout == "10 20\n"

    def test_comma_operator(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = (1, 2, 3);
    printf("%d\n", x);
    return 0;
}''')
        assert out.stdout == "3\n"

    def test_float_arithmetic(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    double d = 3.5 * 2.0 + 1.0;
    printf("%.1f %d\n", d, (int)d);
    return 0;
}''')
        assert out.stdout == "8.0 8\n"

    def test_float_int_conversions(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int i = 7;
    double d = i / 2;        /* integer division first */
    double e = i / 2.0;      /* float division */
    printf("%.1f %.1f\n", d, e);
    return 0;
}''')
        assert out.stdout == "3.0 3.5\n"


class TestArithmeticUB:
    def test_signed_overflow(self, expect_ub):
        expect_ub("int main(void){ int x = 2147483647; return x + 1; }",
                  "Exceptional_condition")

    def test_int_min_negation(self, expect_ub):
        expect_ub("int main(void){ int x = -2147483647 - 1; "
                  "return -x; }", "Exceptional_condition")

    def test_division_by_zero(self, expect_ub):
        expect_ub("int main(void){ int z = 0; return 5 / z; }",
                  "Division_by_zero")

    def test_mod_by_zero(self, expect_ub):
        expect_ub("int main(void){ int z = 0; return 5 % z; }",
                  "Division_by_zero")

    def test_int_min_div_minus_one(self, expect_ub):
        expect_ub("int main(void){ int a = -2147483647 - 1; "
                  "int b = -1; return a / b; }",
                  "Exceptional_condition")

    def test_shift_too_large(self, expect_ub):
        expect_ub("int main(void){ int n = 32; return 1 << n; }",
                  "Shift_too_large")

    def test_negative_shift(self, expect_ub):
        expect_ub("int main(void){ int n = -2; return 4 >> n; }",
                  "Negative_shift")

    def test_signed_left_shift_overflow(self, expect_ub):
        expect_ub("int main(void){ int x = 1; return x << 31; }",
                  "Exceptional_condition")

    def test_unsigned_left_shift_wraps(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) { printf("%u\n", 1u << 31 << 1); return 0; }''')
        # (1u<<31)<<1 reduces modulo 2^32 -> 0 (defined!)
        assert out.stdout == "0\n"


class TestControlFlow:
    def test_nested_loops_break_continue(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int total = 0;
    for (int i = 0; i < 5; i++) {
        if (i == 1) continue;
        if (i == 4) break;
        for (int j = 0; j < 3; j++) {
            if (j == 2) break;
            total += 10 * i + j;
        }
    }
    printf("%d\n", total);
    return 0;
}''')
        # i=0: 0+1; i=2: 20+21; i=3: 30+31 => 103
        assert out.stdout == "103\n"

    def test_while_condition_side_effect(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int n = 0, count = 0;
    while (n++ < 5) count++;
    printf("%d %d\n", n, count);
    return 0;
}''')
        assert out.stdout == "6 5\n"

    def test_do_while_runs_once(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int n = 0;
    do { n++; } while (0);
    printf("%d\n", n);
    return 0;
}''')
        assert out.stdout == "1\n"

    def test_switch_fallthrough_and_default(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
const char *pick(int x) {
    switch (x) {
        case 1:
        case 2: return "small";
        case 3: break;
        default: return "other";
    }
    return "three";
}
int main(void) {
    printf("%s %s %s %s\n", pick(1), pick(2), pick(3), pick(9));
    return 0;
}''')
        assert out.stdout == "small small three other\n"

    def test_switch_negative_case(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = -2;
    switch (x) { case -2: printf("neg\n"); break; default: ; }
    return 0;
}''')
        assert out.stdout == "neg\n"

    def test_goto_forward_cleanup_idiom(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int err = 0;
    for (int i = 0; i < 10; i++)
        if (i == 3) { err = 1; goto fail; }
    printf("no error\n");
    return 0;
fail:
    printf("cleanup %d\n", err);
    return 1;
}''')
        assert out.stdout == "cleanup 1\n"
        assert out.exit_code == 1

    def test_goto_backward_loop(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int i = 0;
again:
    i++;
    if (i < 4) goto again;
    printf("%d\n", i);
    return 0;
}''')
        assert out.stdout == "4\n"

    def test_recursion(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main(void) { printf("%d\n", ack(2, 3)); return 0; }''')
        assert out.stdout == "9\n"

    def test_mutual_recursion(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int is_odd(int n);
int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
int main(void) { printf("%d %d\n", is_even(10), is_odd(7)); return 0; }
''')
        assert out.stdout == "1 1\n"

    def test_main_implicit_return_zero(self, run_ok):
        out = run_ok("int main(void) { }")
        assert out.exit_code == 0

    def test_exit_code(self, run):
        out = run("int main(void) { return 42; }")
        assert out.exit_code == 42


class TestIncrementDecrement:
    def test_postfix_value_is_old(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 5;
    int y = x++;
    printf("%d %d\n", x, y);
    return 0;
}''')
        assert out.stdout == "6 5\n"

    def test_prefix_value_is_new(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 5;
    int y = ++x;
    printf("%d %d\n", x, y);
    return 0;
}''')
        assert out.stdout == "6 6\n"

    def test_decrement(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 5;
    int a = x--;
    int b = --x;
    printf("%d %d %d\n", a, b, x);
    return 0;
}''')
        assert out.stdout == "5 3 3\n"

    def test_unsequenced_double_decrement_is_ub(self, expect_ub):
        # printf("%d %d", x--, --x) modifies x twice unsequenced.
        expect_ub(r'''
#include <stdio.h>
int main(void) {
    int x = 5;
    printf("%d %d\n", x--, --x);
    return 0;
}''', "Unsequenced_race")

    def test_compound_assignments(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
int main(void) {
    int x = 10;
    x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1;
    x &= 0x1F; x ^= 0x10;
    printf("%d\n", x);
    return 0;
}''')
        assert out.stdout == "1\n"

    def test_postfix_overflow_is_ub(self, expect_ub):
        expect_ub("int main(void){ int x = 2147483647; x++; return 0; }",
                  "Exceptional_condition")
