"""Dedicated diagnostics for known fragment gaps (VLAs, bit-fields).

The paper stresses that static-phase failures "identify exactly what
part of the standard is violated"; the same courtesy applies to the
deliberate fragment gaps — a VLA must be reported as a VLA, not as a
generic constant-expression complaint, and both diagnostics must point
the user at the fragment documentation.
"""

import pytest

from repro.errors import DesugarError, UnsupportedError
from repro.pipeline import compile_c


class TestVlaDiagnostic:
    def test_variable_size_array_named_as_vla(self):
        with pytest.raises(UnsupportedError,
                           match="variable-length arrays are outside "
                                 "the Cerberus fragment") as exc:
            compile_c("int main(void) { int n = 4; int a[n]; "
                      "return 0; }")
        # The generic constant-expression error is the chained cause,
        # not the user-facing diagnostic.
        assert isinstance(exc.value.__cause__, DesugarError)

    def test_vla_diagnostic_points_at_fragment_docs(self):
        with pytest.raises(UnsupportedError,
                           match="Fragment gaps"):
            compile_c("void f(int n) { int a[n * 2]; }")

    def test_unspecified_size_star_is_vla_too(self):
        with pytest.raises(UnsupportedError,
                           match="variable-length arrays"):
            compile_c("void f(int n) { int a[*]; }")

    def test_constant_sizes_still_fold(self):
        compile_c("int main(void) { int a[2 + 3]; "
                  "return sizeof(a) == 5 * sizeof(int) ? 0 : 1; }")

    def test_negative_size_stays_a_constraint_violation(self):
        # A *constant* but invalid size is a DesugarError (§6.7.6.2p1),
        # not a fragment gap.
        with pytest.raises(DesugarError, match="negative"):
            compile_c("int main(void) { int a[-1]; return 0; }")

    def test_erroneous_constant_sizes_keep_their_diagnostics(self):
        # Constant-expression *errors* are not VLAs: the specific
        # diagnostic must survive, not the fragment-gap message.
        with pytest.raises(DesugarError, match="division by zero"):
            compile_c("int main(void) { int a[1/0]; return 0; }")
        with pytest.raises(DesugarError,
                           match="not an integer constant"):
            compile_c("int main(void) { int a[3.5]; return 0; }")


class TestBitfieldDiagnostic:
    def test_named_bitfield_names_the_member(self):
        with pytest.raises(UnsupportedError,
                           match="bit-field 'x' in struct definition"):
            compile_c("struct s { int x : 3; }; "
                      "int main(void) { return 0; }")

    def test_bitfield_points_at_fragment_docs(self):
        with pytest.raises(UnsupportedError, match="Fragment gaps"):
            compile_c("struct s { unsigned flags : 1; }; "
                      "int main(void) { return 0; }")

    def test_anonymous_bitfield(self):
        with pytest.raises(UnsupportedError,
                           match="anonymous bit-field"):
            compile_c("struct s { int a; int : 4; }; "
                      "int main(void) { return 0; }")

    def test_union_bitfield_names_union(self):
        with pytest.raises(UnsupportedError,
                           match="bit-field 'b' in union definition"):
            compile_c("union u { int b : 2; }; "
                      "int main(void) { return 0; }")
