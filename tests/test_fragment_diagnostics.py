"""Diagnostics for the *remaining* fragment gaps.

Bit-fields and block-scope VLAs are now inside the evaluated fragment
(real layout in the memory object models; runtime-sized ``create``).
What stays outside — and must keep a dedicated diagnostic naming the
construct and pointing at the fragment documentation — is the variably
modified *type* machinery around them: ``[*]``, inner variable
dimensions, pointers to VLA types, VLA type names in casts/sizeof, and
goto interacting with VLA scopes.  Constraint violations (negative
constant sizes, file-scope VLAs, VLA members) stay precise
DesugarErrors naming the violated clause.
"""

import pytest

from repro.errors import DesugarError, TypeCheckError, UnsupportedError
from repro.pipeline import compile_c


class TestNowInsideTheFragment:
    def test_block_scope_vla_compiles_and_runs(self):
        out = compile_c(
            "int main(void) { int n = 4; int a[n]; "
            "return (int)(sizeof(a) / sizeof(int)); }").run("concrete")
        assert out.exit_code == 4

    def test_bitfields_compile_and_run(self):
        out = compile_c(
            "struct s { unsigned lo : 4; unsigned hi : 4; }; "
            "int main(void) { struct s s; s.lo = 5; s.hi = 2; "
            "return s.lo + 16 * s.hi; }").run("concrete")
        assert out.exit_code == 37

    def test_constant_sizes_still_fold(self):
        compile_c("int main(void) { int a[2 + 3]; "
                  "return sizeof(a) == 5 * sizeof(int) ? 0 : 1; }")


class TestRemainingVlaGaps:
    """The variably-modified-type corners still pinned as unsupported."""

    def test_unspecified_size_star(self):
        with pytest.raises(UnsupportedError, match=r"\[\*\]"):
            compile_c("void f(int n) { int a[*]; }")

    def test_inner_variable_dimension(self):
        with pytest.raises(UnsupportedError,
                           match="outermost dimension"):
            compile_c("void f(int n) { int a[3][n]; }")

    def test_vla_of_vla(self):
        with pytest.raises(UnsupportedError,
                           match="outermost dimension"):
            compile_c("void f(int n, int m) { int a[n][m]; }")

    def test_pointer_to_vla(self):
        with pytest.raises(UnsupportedError,
                           match="pointer to variable length array"):
            compile_c("void f(int n) { int (*p)[n]; }")

    def test_vla_type_name_in_sizeof(self):
        with pytest.raises(UnsupportedError,
                           match="variably modified type in a type "
                                 "name"):
            compile_c("int f(int n) { return (int)sizeof(int[n]); }")

    def test_variably_modified_typedef(self):
        with pytest.raises(UnsupportedError,
                           match="variably modified typedef"):
            compile_c("void f(int n) { typedef int T[n]; }")

    def test_address_of_vla(self):
        with pytest.raises(UnsupportedError, match="address of a "
                                                   "variable length"):
            compile_c("void f(int n) { int a[n]; void *p = &a; }")

    def test_vla_among_switch_case_labels(self):
        # A case label may not jump into a VLA's scope (§6.8.4.2p2);
        # a braced block wholly inside one case stays supported.
        with pytest.raises(UnsupportedError,
                           match="switch case labels"):
            compile_c("int main(void) { int n = 2; switch (n) { "
                      "case 1: ; int a[n]; a[0] = 5; "
                      "case 2: return 0; } return 1; }")
        out = compile_c(
            "int main(void) { int n = 3; switch (1) { "
            "case 1: { int a[n]; a[0] = 7; return a[0]; } } "
            "return 0; }").run("concrete")
        assert out.exit_code == 7

    def test_vla_in_function_with_labels(self):
        with pytest.raises(UnsupportedError,
                           match="function with labels"):
            compile_c("int main(void) { int n = 2; "
                      "l: ; int a[n]; a[0] = 0; "
                      "if (a[0]) goto l; return 0; }")

    def test_gaps_point_at_fragment_docs(self):
        for src in ("void f(int n) { int a[*]; }",
                    "void f(int n) { int (*p)[n]; }",
                    "void f(int n) { int a[3][n]; }"):
            with pytest.raises(UnsupportedError, match="Fragment gaps"):
                compile_c(src)


class TestVlaConstraintViolations:
    """Ill-formed VLAs are constraint violations, not fragment gaps."""

    def test_negative_constant_size(self):
        with pytest.raises(DesugarError, match="negative"):
            compile_c("int main(void) { int a[-1]; return 0; }")

    def test_erroneous_constant_sizes_keep_their_diagnostics(self):
        with pytest.raises(DesugarError, match="division by zero"):
            compile_c("int main(void) { int a[1/0]; return 0; }")
        with pytest.raises(DesugarError,
                           match="not an integer constant"):
            compile_c("int main(void) { int a[3.5]; return 0; }")

    def test_file_scope_vla(self):
        with pytest.raises(DesugarError,
                           match="automatic storage duration"):
            compile_c("int n; int a[n]; int main(void) { return 0; }")

    def test_static_vla(self):
        with pytest.raises(DesugarError,
                           match="automatic storage duration"):
            compile_c("void f(int n) { static int a[n]; }")

    def test_vla_with_initialiser(self):
        with pytest.raises(DesugarError,
                           match="may not be initialised"):
            compile_c("void f(int n) { int a[n] = {0}; }")

    def test_vla_struct_member(self):
        with pytest.raises(DesugarError,
                           match="variably modified"):
            compile_c("void f(int n) { struct s { int a[n]; }; }")


class TestBitfieldConstraintViolations:
    def test_width_exceeds_type(self):
        with pytest.raises(DesugarError, match="exceeds the width"):
            compile_c("struct s { int x : 33; };")

    def test_named_zero_width(self):
        with pytest.raises(DesugarError, match="zero width"):
            compile_c("struct s { int x : 0; };")

    def test_negative_width(self):
        with pytest.raises(DesugarError, match="negative"):
            compile_c("struct s { int x : -1; };")

    def test_non_integer_type(self):
        with pytest.raises(DesugarError, match="non-integer"):
            compile_c("struct s { float x : 3; };")

    def test_address_of_bitfield(self):
        with pytest.raises(TypeCheckError, match="bit-field"):
            compile_c("struct s { int x : 3; }; int main(void) { "
                      "struct s s; int *p = &s.x; return 0; }")

    def test_sizeof_bitfield(self):
        with pytest.raises(TypeCheckError, match="bit-field"):
            compile_c("struct s { int x : 3; }; int main(void) { "
                      "struct s s; return (int)sizeof(s.x); }")

    def test_offsetof_bitfield(self):
        with pytest.raises(TypeCheckError, match="bit-field"):
            compile_c("#include <stddef.h>\n"
                      "struct s { int a; int x : 3; }; "
                      "int main(void) { "
                      "return (int)offsetof(struct s, x); }")


class TestRemainingBitfieldGaps:
    def test_bitfield_in_anonymous_member(self):
        # Splicing anonymous members would merge the inner record's
        # allocation units into the outer packing (GCC gives the
        # anonymous struct its own unit) — a named gap, not a silently
        # diverging layout.
        with pytest.raises(UnsupportedError,
                           match="anonymous struct/union member"):
            compile_c("struct s { struct { unsigned a : 4; }; "
                      "unsigned b : 4; }; "
                      "int main(void) { return 0; }")

    def test_named_member_with_bitfields_is_fine(self):
        out = compile_c(
            "struct inner { unsigned a : 4; }; "
            "struct s { struct inner in; unsigned b : 4; }; "
            "int main(void) { struct s s; s.in.a = 3; s.b = 5; "
            "return s.in.a + s.b + (int)sizeof(struct s); }"
        ).run("concrete")
        # inner occupies its own 4-byte unit; b opens the next one.
        assert out.exit_code == 3 + 5 + 8


class TestOtherRemainingGaps:
    """Long-standing exclusions that survive the widening, pinned so a
    future change is deliberate."""

    def test_generic_selection(self):
        with pytest.raises(UnsupportedError, match="generic"):
            compile_c("int main(void) { return _Generic(1, int: 0); }")

    def test_nested_goto_labels(self):
        with pytest.raises(UnsupportedError, match="label nested"):
            compile_c("int main(void) { { l: ; } goto l; return 0; }")
