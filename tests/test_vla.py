"""Variable length arrays (§6.7.6.2) under the five memory object
models: runtime-sized ``create`` at the declaration point, runtime
``sizeof``, lifetime per block entry, and the dedicated UB verdicts for
sizes that are negative, zero, unspecified or absurdly large.
"""

import pytest

from repro.farm.store import ArtifactStore, STORE_SCHEMA_VERSION
from repro.pipeline import (
    MODELS, clear_compile_cache, compile_c, explore_c, run_c, run_many,
    set_artifact_store,
)


class TestVlaBasics:
    def test_fill_and_sum(self, run_ok):
        out = run_ok(r'''
int main(void) {
    int n = 5;
    int a[n];
    int i, s = 0;
    for (i = 0; i < n; i++) a[i] = i * i;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}''')
        assert out.exit_code == 30

    def test_sizeof_is_a_runtime_value(self, run_ok):
        out = run_ok(r'''
int main(void) {
    int n = 3;
    long a[n];
    return (int)(sizeof(a) / sizeof(a[0]));
}''')
        assert out.exit_code == 3

    def test_size_expression_evaluated_at_declaration(self, run_ok):
        # Changing n afterwards must not resize the array (§6.7.6.2p5:
        # the size is fixed for the lifetime of the object).
        out = run_ok(r'''
int main(void) {
    int n = 4;
    int a[n + 1];
    n = 100;
    return (int)(sizeof(a) / sizeof(int));
}''')
        assert out.exit_code == 5

    def test_fresh_object_per_block_entry(self, run_ok):
        out = run_ok(r'''
int main(void) {
    int total = 0;
    int n;
    for (n = 1; n <= 3; n++) {
        int a[n];
        a[n - 1] = n;
        total += a[n - 1] + (int)(sizeof(a) / sizeof(int));
    }
    return total;
}''')
        assert out.exit_code == 12

    def test_outer_variable_dimension_over_fixed_inner(self, run_ok):
        out = run_ok(r'''
int main(void) {
    int n = 2;
    int a[n][3];
    int i, j, s = 0;
    for (i = 0; i < n; i++)
        for (j = 0; j < 3; j++)
            a[i][j] = 10 * i + j;
    for (i = 0; i < n; i++)
        for (j = 0; j < 3; j++)
            s += a[i][j];
    return s + (int)(sizeof(a) / sizeof(a[0]));
}''')
        assert out.exit_code == 36 + 2

    def test_vla_decays_to_pointer_for_calls(self, run_ok):
        out = run_ok(r'''
static int sum(int *p, int n) {
    int i, s = 0;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}
int main(void) {
    int n = 4;
    int a[n];
    int i;
    for (i = 0; i < n; i++) a[i] = i + 1;
    return sum(a, n);
}''')
        assert out.exit_code == 10

    def test_size_derived_from_another_vla_sizeof(self, run_ok):
        # sizeof(VLA) is not a constant expression, so b is a VLA too.
        out = run_ok(r'''
int main(void) {
    int n = 3;
    int a[n];
    char b[sizeof(a)];
    return (int)(sizeof(b) / sizeof(char));
}''')
        assert out.exit_code == 12

    def test_out_of_bounds_vla_access_still_checked(self, expect_ub):
        expect_ub(r'''
int main(void) {
    int n = 2;
    int a[n];
    a[0] = 1; a[1] = 2;
    return a[5];
}''', "Access_wrong_provenance", model="provenance")


class TestVlaUbVerdicts:
    def test_negative_size(self, expect_ub):
        expect_ub("int main(void){ int n = -1; int a[n]; return 0; }",
                  "VLA_size_not_positive")

    def test_zero_size(self, expect_ub):
        expect_ub("int main(void){ int n = 0; int a[n]; return 0; }",
                  "VLA_size_not_positive")

    def test_overflowing_size(self, expect_ub):
        expect_ub("int main(void){ long n = 1L << 40; int a[n]; "
                  "return 0; }", "VLA_size_too_large")

    def test_unspecified_size_is_ub(self):
        out = run_c("int main(void){ int n; int a[n]; return 0; }")
        assert out.status == "ub"

    def test_negative_size_verdict_agrees_across_models(self):
        outcomes = run_many(
            "int main(void){ int n = -2; int a[n]; return 0; }")
        assert set(outcomes) == set(MODELS)
        for model, out in outcomes.items():
            assert out.status == "ub", f"{model}: {out.summary()}"
            assert out.ub.name == "VLA_size_not_positive", model


class TestFiveModelSweep:
    SRC = r'''
#include <stdio.h>
struct flags { unsigned ready : 1; unsigned retries : 3; };
int main(void) {
    int n = 4;
    int fib[n];
    struct flags f;
    int i;
    fib[0] = 0; fib[1] = 1;
    for (i = 2; i < n; i++) fib[i] = fib[i - 1] + fib[i - 2];
    f.ready = 1;
    f.retries = 5;
    printf("%d %u %u %u\n", fib[n - 1], f.ready, f.retries,
           (unsigned)sizeof(fib));
    return fib[n - 1] + f.retries;
}'''

    def test_bitfield_vla_program_agrees_across_all_models(self):
        outcomes = run_many(self.SRC)
        assert set(outcomes) == set(MODELS)
        for model, out in outcomes.items():
            assert out.status == "done", f"{model}: {out.summary()}"
            assert out.stdout == "2 1 5 16\n", model
            assert out.exit_code == 7, model

    def test_exhaustive_exploration_handles_vla(self):
        result = explore_c(
            "int main(void){ int n = 2; int a[n]; a[0] = 1; "
            "a[1] = 2; return a[0] + a[1]; }", max_paths=50)
        assert result.outcomes
        assert all(o.exit_code == 3 for o in result.outcomes)


class TestFarmRoundTrip:
    def test_schema_version_covers_the_widened_fragment(self):
        # Version 1 artifacts predate Member.bit_width / VarArray /
        # EVlaCreate; the bump keeps them from deserialising into this
        # interpreter.
        assert STORE_SCHEMA_VERSION >= 2

    def test_bitfield_vla_artifact_survives_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        previous = set_artifact_store(store)
        try:
            clear_compile_cache()
            first = run_many(TestFiveModelSweep.SRC)
            clear_compile_cache()        # force the on-disk path
            again = run_many(TestFiveModelSweep.SRC)
            assert store.stats()["hits"] >= 1
            for model in MODELS:
                assert again[model].status == "done"
                assert again[model].stdout == first[model].stdout
                assert again[model].exit_code == first[model].exit_code
        finally:
            set_artifact_store(previous)
            clear_compile_cache()
