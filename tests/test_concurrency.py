"""The restricted concurrency fragment (paper §1, §5.1): threads,
interleaving exploration, data-race detection."""

import pytest

from repro.concurrency.model import run_litmus


class TestThreads:
    def test_create_join(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <threads.h>
int worker(void *arg) { return 40; }
int main(void) {
    thrd_t t;
    int res = 0;
    thrd_create(&t, worker, 0);
    thrd_join(t, &res);
    printf("%d\n", res + 2);
    return 0;
}''', model="concrete")
        assert out.stdout == "42\n"

    def test_join_synchronises(self, run_ok):
        # Write in child, read after join: happens-before via join, no
        # race.
        out = run_ok(r'''
#include <stdio.h>
#include <threads.h>
int data;
int worker(void *arg) { data = 99; return 0; }
int main(void) {
    thrd_t t;
    thrd_create(&t, worker, 0);
    thrd_join(t, 0);
    printf("%d\n", data);
    return 0;
}''', model="concrete")
        assert out.stdout == "99\n"

    def test_two_workers(self, run_ok):
        out = run_ok(r'''
#include <stdio.h>
#include <threads.h>
int a, b;
int wa(void *arg) { a = 1; return 0; }
int wb(void *arg) { b = 2; return 0; }
int main(void) {
    thrd_t t1, t2;
    thrd_create(&t1, wa, 0);
    thrd_create(&t2, wb, 0);
    thrd_join(t1, 0);
    thrd_join(t2, 0);
    printf("%d\n", a + b);
    return 0;
}''', model="concrete")
        assert out.stdout == "3\n"


class TestRaces:
    def test_unsynchronised_write_write_races(self):
        res = run_litmus(r'''
#include <threads.h>
int x;
int w(void *arg) { x = 1; return 0; }
int main(void) {
    thrd_t t;
    thrd_create(&t, w, 0);
    x = 2;                     /* races with the child's store */
    thrd_join(t, 0);
    return 0;
}''', max_paths=200)
        assert res.has_race

    def test_read_write_race(self):
        res = run_litmus(r'''
#include <threads.h>
int x;
int r(void *arg) { return x; }
int main(void) {
    thrd_t t;
    thrd_create(&t, r, 0);
    x = 1;
    thrd_join(t, 0);
    return 0;
}''', max_paths=200)
        assert res.has_race

    def test_disjoint_locations_no_race(self):
        res = run_litmus(r'''
#include <threads.h>
int x, y;
int w(void *arg) { x = 1; return 0; }
int main(void) {
    thrd_t t;
    thrd_create(&t, w, 0);
    y = 2;
    thrd_join(t, 0);
    return x + y - 3;
}''', max_paths=200)
        assert not res.has_race

    def test_message_passing_naive_races(self):
        from repro.concurrency.model import MESSAGE_PASSING
        res = run_litmus(MESSAGE_PASSING, max_paths=300)
        # Non-atomic flag/data: the unsynchronised reads race.
        assert res.has_race

    def test_interleavings_observable(self):
        res = run_litmus(r'''
#include <stdio.h>
#include <threads.h>
int w(void *arg) { putchar('a'); return 0; }
int main(void) {
    thrd_t t;
    thrd_create(&t, w, 0);
    putchar('b');
    thrd_join(t, 0);
    putchar(10);
    return 0;
}''', max_paths=300)
        texts = {b for b in res.behaviours if "stdout" in b}
        assert any("ab" in b for b in texts)
        assert any("ba" in b for b in texts)
