"""Server conformance: daemon-path verdicts == direct-API verdicts.

The golden document (tests/goldens/verdicts.json) pins the direct
``explore_many`` behaviour set of every de facto test program under
every memory model.  These tests submit the same programs through a
*real* ``cerberus-py serve`` daemon and require the payloads to be
byte-identical — the service seam must not change a single verdict.

Tier 1 runs a 4-program slice (checked against both a live direct-API
recomputation and the golden document); the full 53-program × 5-model
matrix rides the ``slow_sweep`` lane.  The crash-recovery test pins
the other conformance axis: a SIGKILL'd campaign, restarted on the
same store, must end with behaviour sets and accounting identical to
an uninterrupted run.
"""

from __future__ import annotations

import time

import pytest

from repro.testsuite.goldens import (
    GOLDEN_MAX_PATHS, GOLDEN_MAX_STEPS, behaviour_set, load_goldens,
)
from repro.testsuite.programs import TESTS

#: The tier-1 slice: cheap programs whose golden cells span the
#: interesting shapes — model-divergent behaviour sets
#: (provenance_equality_*), pointer identity after free, and a
#: plain single-behaviour baseline.
TIER1_PROGRAMS = (
    "provenance_equality_adjacent",
    "provenance_equality_gcc",
    "dangling_equality",
    "computed_zero_is_null",
)


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


def server_behaviour_sets(daemon, name: str, models) -> dict:
    """One program through the daemon at golden budgets; returns
    {model: sorted behaviour list} — the golden cell shape.  Submits
    under the direct API's default program name (``<string>``): UB
    behaviours pin their source *site* including the file name, so
    byte-identity requires the same name on both paths."""
    response = daemon.client(client="conformance").submit(
        TESTS[name].source, name="<string>", models=list(models),
        mode="explore", max_paths=GOLDEN_MAX_PATHS,
        max_steps=GOLDEN_MAX_STEPS)
    assert response["state"] == "done", response
    report = response["report"]
    assert report["ok"], report.get("error")
    return {model: exploration["behaviours"] for model, exploration
            in report["explorations"].items()}


def test_tier1_slice_matches_direct_api_and_goldens(farm_daemon,
                                                    goldens):
    daemon = farm_daemon()
    models = goldens["models"]
    for name in TIER1_PROGRAMS:
        via_server = server_behaviour_sets(daemon, name, models)
        for model in models:
            direct = behaviour_set(TESTS[name].source, model)
            assert via_server[model] == direct, \
                f"{name} [{model}]: server != direct API"
            assert via_server[model] == \
                goldens["verdicts"][name][model], \
                f"{name} [{model}]: server != golden"


@pytest.mark.slow_sweep
def test_full_golden_matrix_through_server(farm_daemon, goldens):
    """All 53 programs × 5 models, one job per program × model (so
    any divergence names its exact cell), byte-compared to the golden
    document."""
    daemon = farm_daemon()
    client = daemon.client(client="matrix", wait_timeout=600)
    mismatches = []
    for name in sorted(goldens["verdicts"]):
        for model in goldens["models"]:
            response = client.submit(
                TESTS[name].source, name="<string>", models=[model],
                mode="explore", max_paths=GOLDEN_MAX_PATHS,
                max_steps=GOLDEN_MAX_STEPS)
            report = response["report"]
            if not report["ok"]:
                mismatches.append(f"{name} [{model}]: job failed: "
                                  f"{report.get('error')}")
                continue
            behaviours = report["explorations"][model]["behaviours"]
            golden = goldens["verdicts"][name][model]
            if behaviours != golden:
                mismatches.append(f"{name} [{model}]:\n"
                                  f"  golden: {golden}\n"
                                  f"  server: {behaviours}")
    assert not mismatches, "\n".join(mismatches)


# -- crash recovery ------------------------------------------------------------

#: A mid-size corpus: the first program explores long enough
#: (~seconds on one worker) that the SIGKILL reliably lands
#: mid-campaign, with accepted-but-unstarted jobs behind it.
CRASH_CORPUS = [
    ("interleave.c",
     "int a; int b; int c; int d;\n"
     "int main(void){ (a=1)+(b=2)+(c=3)+(d=4);"
     " return a+b+c+d-10; }\n"),
    ("race.c", "int x; int main(void){ return (x=1)+(x=2); }\n"),
    ("pair.c", "int a; int b;\n"
               "int main(void){ return (a=1)+(b=2); }\n"),
]
CRASH_PATHS = 3000


def _submit_corpus(daemon, client_name: str):
    client = daemon.client(client=client_name)
    return [client.submit(source, name=name, models=["concrete"],
                          mode="explore", max_paths=CRASH_PATHS,
                          wait=False)["job"]
            for name, source in CRASH_CORPUS]


def _collect(daemon, job_ids):
    client = daemon.client()
    out = {}
    for job_id in job_ids:
        response = client.wait_result(job_id, timeout=300)
        assert response["state"] == "done", response
        exploration = response["report"]["explorations"]["concrete"]
        out[job_id] = (exploration["behaviours"],
                       exploration["paths_run"],
                       exploration["exhausted"])
    return out


def test_sigkill_midcampaign_restart_equals_uninterrupted(
        farm_daemon):
    # The uninterrupted baseline: same corpus through a daemon that
    # is never disturbed.
    baseline_daemon = farm_daemon()
    baseline_jobs = _submit_corpus(baseline_daemon, "baseline")
    baseline = _collect(baseline_daemon, baseline_jobs)
    baseline_daemon.terminate()

    # The doomed campaign: identical submissions, SIGKILL while the
    # first exploration is in flight and the rest are queued.
    doomed = farm_daemon()
    jobs = _submit_corpus(doomed, "doomed")
    assert jobs == baseline_jobs, \
        "identical submissions must content-address identically"
    time.sleep(0.8)
    doomed.kill9()

    revived = farm_daemon(store=doomed.store,
                          socket_path=doomed.socket_path)
    assert revived.client().stats()["server"]["counters"][
        "resumed"] == len(jobs)
    merged = _collect(revived, jobs)

    # Behaviour sets AND accounting (paths_run, exhausted) must merge
    # to exactly the uninterrupted run — the exploration-record
    # frontier resume guarantees no path is lost or double-counted.
    assert merged == baseline
