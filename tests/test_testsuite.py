"""The design-space question registry and the de facto test suite
(paper §2)."""

import pytest

from repro.testsuite import (
    CATEGORIES, QUESTIONS, TESTS, category_counts, clarity_split,
    run_test,
)
from repro.testsuite.questions import QUESTION_BY_ID


class TestRegistry:
    def test_85_unique_questions(self):
        assert len(QUESTIONS) == 85
        ids = [q.qid for q in QUESTIONS]
        assert len(set(ids)) == 85

    def test_22_categories(self):
        assert len(CATEGORIES) == 22

    def test_category_counts_match_paper(self):
        counts = category_counts()
        expected = {
            "Pointer provenance basics": 3,
            "Pointer provenance via integer types": 5,
            "Pointers involving multiple provenances": 5,
            "Pointer provenance via pointer representation copying": 4,
            "Pointer provenance and union type punning": 2,
            "Pointer provenance via IO": 1,
            "Stability of pointer values": 1,
            "Pointer equality comparison (with == or !=)": 3,
            "Pointer relational comparison (with <, >, <=, or >=)": 3,
            "Null pointers": 3,
            "Pointer arithmetic": 6,
            "Casts between pointer types": 2,
            "Accesses to related structure and union types": 4,
            "Pointer lifetime end": 2,
            "Invalid accesses": 2,
            "Trap representations": 2,
            "Unspecified values": 11,
            "Structure and union padding": 13,
            "Basic effective types": 2,
            "Effective types and character arrays": 1,
            "Effective types and subobjects": 6,
            "Other questions": 5,
        }
        assert counts == expected

    def test_clarity_split_matches_paper(self):
        # §2: "for 38 the ISO standard is unclear; for 28 the de facto
        # standards are unclear; for 26 there are significant
        # differences".
        assert clarity_split() == (38, 28, 26)

    def test_known_questions_present(self):
        q25 = QUESTION_BY_ID["Q25"]
        assert "relational comparison" in q25.title
        assert q25.survey == "[7/15]"
        q75 = QUESTION_BY_ID["Q75"]
        assert q75.category == "Effective types and character arrays"
        assert QUESTION_BY_ID["Q31"].survey == "[9/15]"

    def test_tests_reference_known_questions(self):
        for test in TESTS.values():
            for qid in test.questions:
                assert qid in QUESTION_BY_ID, \
                    f"{test.name} references unknown {qid}"

    def test_every_question_test_exists(self):
        for q in QUESTIONS:
            for tname in q.tests:
                assert tname in TESTS, f"{q.qid} -> missing {tname}"


class TestSuiteExpectations:
    """Run a representative slice of the suite under each model and
    check the expected verdicts (the full sweep runs in the benches)."""

    CORE = ["provenance_basic_global_yx", "int_cast_roundtrip",
            "oob_transient", "relational_cross_object", "uninit_read",
            "char_array_as_heap", "use_after_free", "ptr_copy_memcpy",
            "inter_object_offset", "union_pun_int",
            "unsequenced_race", "signed_overflow"]

    @pytest.mark.parametrize("name", CORE)
    def test_concrete(self, name):
        result = run_test(TESTS[name], "concrete")
        assert result.matches is not False, \
            f"{name}: {result.verdict} != {result.expected}"

    @pytest.mark.parametrize("name", CORE)
    def test_provenance(self, name):
        result = run_test(TESTS[name], "provenance")
        assert result.matches is not False, \
            f"{name}: {result.verdict} != {result.expected}"

    @pytest.mark.parametrize("name", CORE)
    def test_strict(self, name):
        result = run_test(TESTS[name], "strict")
        assert result.matches is not False, \
            f"{name}: {result.verdict} != {result.expected}"

    def test_dr260_concrete_output(self):
        # The concrete semantics prints the store's effect (§2.1).
        result = run_test(TESTS["provenance_basic_global_yx"],
                          "concrete")
        assert "x=1 y=11 *p=11 *q=11" in result.stdout

    def test_dr260_provenance_flags(self):
        result = run_test(TESTS["provenance_basic_global_yx"],
                          "provenance")
        assert result.verdict == "ub:Access_wrong_provenance"
